//! The full evaluation corpus: 119 engines × 10 pages, mirroring the
//! paper's test bed (§6: 100 ViNTs dataset-2 engines of which 19 are
//! multi-section, plus 19 extra multi-section engines → 38 multi / 81
//! single), with 5 sample + 5 test pages per engine.

use crate::spec::EngineSpec;
use crate::truth::GeneratedPage;
use serde::{Deserialize, Serialize};

/// Corpus shape parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorpusConfig {
    pub seed: u64,
    pub n_single: usize,
    pub n_multi: usize,
    pub pages_per_engine: usize,
    /// The first `n_sample_pages` page indices are the training split.
    pub n_sample_pages: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 2006,
            n_single: 81,
            n_multi: 38,
            pages_per_engine: 10,
            n_sample_pages: 5,
        }
    }
}

impl CorpusConfig {
    /// A reduced corpus for fast tests: same proportions, fewer engines.
    pub fn small(seed: u64) -> CorpusConfig {
        CorpusConfig {
            seed,
            n_single: 8,
            n_multi: 4,
            pages_per_engine: 10,
            n_sample_pages: 5,
        }
    }
}

/// The generated corpus.
#[derive(Clone, Debug)]
pub struct Corpus {
    pub config: CorpusConfig,
    pub engines: Vec<EngineSpec>,
}

impl Corpus {
    /// Generate deterministically from the config. Multi-section engines
    /// come first (ids `0..n_multi`).
    pub fn generate(config: CorpusConfig) -> Corpus {
        let engines = (0..config.n_multi + config.n_single)
            .map(|id| EngineSpec::with_profile(config.seed, id, id < config.n_multi))
            .collect();
        Corpus { config, engines }
    }

    /// Sample (training) pages of an engine.
    pub fn sample_pages(&self, engine: &EngineSpec) -> Vec<GeneratedPage> {
        (0..self.config.n_sample_pages)
            .map(|q| engine.page(q))
            .collect()
    }

    /// Held-out test pages of an engine.
    pub fn test_pages(&self, engine: &EngineSpec) -> Vec<GeneratedPage> {
        (self.config.n_sample_pages..self.config.pages_per_engine)
            .map(|q| engine.page(q))
            .collect()
    }

    /// Corpus-level ground-truth statistics (the paper's §2/§6 numbers we
    /// calibrate against).
    pub fn stats(&self) -> CorpusStats {
        let mut s = CorpusStats {
            engines: self.engines.len(),
            multi_engines: self.engines.iter().filter(|e| e.multi).count(),
            ..Default::default()
        };
        for e in &self.engines {
            for q in 0..self.config.pages_per_engine {
                let p = e.page(q);
                s.pages += 1;
                s.sections += p.truth.sections.len();
                s.records += p.truth.total_records();
                for gt in &p.truth.sections {
                    let schema = e.sections.iter().find(|sc| sc.name == gt.schema);
                    if let Some(schema) = schema {
                        let has_lbm = !matches!(schema.header, crate::spec::HeaderStyle::None);
                        let has_rbm = schema.more_rbm && gt.records.len() > 5;
                        if has_lbm || has_rbm {
                            s.sections_with_sbm += 1;
                        }
                    }
                }
            }
        }
        s
    }
}

/// Ground-truth corpus statistics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CorpusStats {
    pub engines: usize,
    pub multi_engines: usize,
    pub pages: usize,
    pub sections: usize,
    pub records: usize,
    pub sections_with_sbm: usize,
}

impl CorpusStats {
    pub fn sbm_fraction(&self) -> f64 {
        if self.sections == 0 {
            return 0.0;
        }
        self.sections_with_sbm as f64 / self.sections as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_shape_matches_config() {
        let c = Corpus::generate(CorpusConfig::small(1));
        assert_eq!(c.engines.len(), 12);
        assert_eq!(c.engines.iter().filter(|e| e.multi).count(), 4);
        assert!(c.engines[..4].iter().all(|e| e.multi));
        let e = &c.engines[0];
        assert_eq!(c.sample_pages(e).len(), 5);
        assert_eq!(c.test_pages(e).len(), 5);
    }

    #[test]
    fn default_config_is_paper_shaped() {
        let cfg = CorpusConfig::default();
        assert_eq!(cfg.n_single + cfg.n_multi, 119);
        assert_eq!(cfg.n_multi, 38);
        assert_eq!(cfg.pages_per_engine, 10);
    }

    #[test]
    fn stats_on_small_corpus() {
        let c = Corpus::generate(CorpusConfig::small(7));
        let s = c.stats();
        assert_eq!(s.pages, 120);
        // Every page has at least one section; multi engines average > 1.
        assert!(s.sections >= s.pages);
        assert!(s.records > s.sections);
        // SBM coverage should be near the paper's 96.9%.
        assert!(s.sbm_fraction() > 0.9, "sbm = {}", s.sbm_fraction());
    }

    #[test]
    fn sample_and_test_pages_disjoint() {
        let c = Corpus::generate(CorpusConfig::small(3));
        let e = &c.engines[0];
        let s = c.sample_pages(e);
        let t = c.test_pages(e);
        for sp in &s {
            for tp in &t {
                assert_ne!(sp.html, tp.html);
            }
        }
    }
}
