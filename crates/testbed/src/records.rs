//! Record and section-instance HTML builders.
//!
//! Every builder returns both the HTML fragment and the content-line texts
//! the `mse-render` layouter will produce for it — the ground truth is
//! *predicted*, and `tests/render_agreement.rs` verifies the prediction
//! against the real renderer for the whole corpus.

use crate::truth::{GtRecord, IMG_LINE};
use crate::words::{pick, FILLER_WORDS, SOURCES, TOPIC_WORDS};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// The display format of a section (container + record template combined;
/// the two are not independent in real pages).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SectionStyle {
    /// `<table>`; record = one `<tr>` with a single `<td>` holding
    /// title / snippet / url lines (the classic Google-era layout).
    TableRowsLinkSnippet,
    /// `<table>`; record = one `<tr>` with rank / title / date cells.
    TableCellsRow,
    /// Like [`SectionStyle::TableCellsRow`] but with a repeated
    /// "Buy new: $…" cell — a deliberate false-SBM trap (paper §5.2 cites
    /// Amazon's "Buy new: $XXX.XX").
    PriceRows,
    /// `<div>` per record with title / snippet.
    DivRecords,
    /// `<ol>/<li>` single-line records.
    ListItems,
    /// `<p>` per record: title / source+date / summary (news style).
    NewsParagraphs,
    /// `<div>` per record with a thumbnail image before the title.
    ImageCaptionDivs,
    /// `<div>` per record: name / address / phone ("Phone:" repeats —
    /// another false-SBM trap).
    DirectoryDivs,
    /// `<div>` records wrapped pairwise in extra `<div class=pair>`s: the
    /// record tag structures are NOT all siblings, the failure mode the
    /// paper's §6 names for its own wrapper design.
    PairedDivRecords,
    /// `<table>`; record = a title `<tr>` followed by an *optional* snippet
    /// `<tr>` — one record spans a variable number of same-tag siblings, a
    /// classic 2006 layout that defeats naive per-tag separators.
    TwoRowRecords,
    /// `<dl>`; record = a `<dt>` title plus an optional `<dd>` description —
    /// alternating same-parent tags, directory-service style.
    DlRecords,
}

pub const ALL_STYLES: &[SectionStyle] = &[
    SectionStyle::TableRowsLinkSnippet,
    SectionStyle::TableCellsRow,
    SectionStyle::PriceRows,
    SectionStyle::DivRecords,
    SectionStyle::ListItems,
    SectionStyle::NewsParagraphs,
    SectionStyle::ImageCaptionDivs,
    SectionStyle::DirectoryDivs,
    SectionStyle::TwoRowRecords,
    SectionStyle::DlRecords,
];

impl SectionStyle {
    /// Container opening markup (between the LBM and the first record).
    pub fn open(&self) -> &'static str {
        match self {
            SectionStyle::TableRowsLinkSnippet => "<table width=\"96%\" cellpadding=\"2\">",
            SectionStyle::TableCellsRow | SectionStyle::PriceRows => {
                "<table width=\"96%\" cellspacing=\"1\">"
            }
            SectionStyle::TwoRowRecords => "<table width=\"96%\" cellpadding=\"1\">",
            SectionStyle::DlRecords => "<dl>",
            SectionStyle::DivRecords
            | SectionStyle::ImageCaptionDivs
            | SectionStyle::DirectoryDivs
            | SectionStyle::PairedDivRecords => "<div class=\"results\">",
            SectionStyle::ListItems => "<ol>",
            SectionStyle::NewsParagraphs => "<div class=\"news\">",
        }
    }

    pub fn close(&self) -> &'static str {
        match self {
            SectionStyle::TableRowsLinkSnippet
            | SectionStyle::TableCellsRow
            | SectionStyle::PriceRows
            | SectionStyle::TwoRowRecords => "</table>",
            SectionStyle::DivRecords
            | SectionStyle::ImageCaptionDivs
            | SectionStyle::DirectoryDivs
            | SectionStyle::PairedDivRecords
            | SectionStyle::NewsParagraphs => "</div>",
            SectionStyle::ListItems => "</ol>",
            SectionStyle::DlRecords => "</dl>",
        }
    }

    /// True when the style nests pairs of records in extra wrappers.
    pub fn non_sibling(&self) -> bool {
        matches!(self, SectionStyle::PairedDivRecords)
    }
}

/// A generated record: HTML plus predicted content lines.
pub struct BuiltRecord {
    pub html: String,
    pub gt: GtRecord,
}

fn title<R: Rng>(rng: &mut R, query: &str, uid: &str) -> String {
    format!(
        "{} {} {} ({})",
        capitalize(pick(rng, TOPIC_WORDS)),
        pick(rng, FILLER_WORDS),
        query,
        uid
    )
}

fn snippet<R: Rng>(rng: &mut R, query: &str) -> String {
    format!(
        "{} {} about {} with {} {} and {}",
        capitalize(pick(rng, FILLER_WORDS)),
        pick(rng, FILLER_WORDS),
        query,
        pick(rng, TOPIC_WORDS),
        pick(rng, TOPIC_WORDS),
        pick(rng, FILLER_WORDS),
    )
}

fn date<R: Rng>(rng: &mut R) -> String {
    format!(
        "{}/{}/{}",
        rng.random_range(1..=12),
        rng.random_range(1..=28),
        rng.random_range(1998..=2006)
    )
}

fn capitalize(w: &str) -> String {
    let mut c = w.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Build one record of the given style.
///
/// `site` is the engine's host name, `uid` a page-unique record id,
/// `with_optional` controls the optional snippet/summary line (records
/// within one section legitimately differ in it — paper Figure 1 shows
/// records with and without description lines).
pub fn build_record<R: Rng>(
    style: SectionStyle,
    rng: &mut R,
    site: &str,
    uid: &str,
    query: &str,
    with_optional: bool,
) -> BuiltRecord {
    let t = title(rng, query, uid);
    match style {
        SectionStyle::TableRowsLinkSnippet => {
            let s = snippet(rng, query);
            let url = format!("www.{site}/doc/{uid}.html");
            let mut html = format!("<tr><td><a href=\"http://{url}\">{t}</a>");
            let mut lines = vec![t];
            if with_optional {
                html.push_str(&format!("<br>{s}"));
                lines.push(s);
            }
            html.push_str(&format!(
                "<br><font color=\"green\" size=\"-1\">{url}</font></td></tr>"
            ));
            lines.push(url);
            BuiltRecord {
                html,
                gt: GtRecord { lines },
            }
        }
        SectionStyle::TableCellsRow => {
            let d = date(rng);
            let rank = format!("{}.", rng.random_range(1..=99));
            let html = format!(
                "<tr><td width=\"30\">{rank}</td><td><a href=\"http://www.{site}/item/{uid}\">{t}</a></td><td width=\"90\"><font size=\"-1\">{d}</font></td></tr>"
            );
            BuiltRecord {
                html,
                gt: GtRecord {
                    lines: vec![rank, t, d],
                },
            }
        }
        SectionStyle::PriceRows => {
            let p1 = format!(
                "${}.{:02}",
                rng.random_range(5..400),
                rng.random_range(0..100)
            );
            let p2 = format!(
                "Buy new: ${}.{:02}",
                rng.random_range(5..400),
                rng.random_range(0..100)
            );
            let html = format!(
                "<tr><td><a href=\"http://www.{site}/p/{uid}\">{t}</a></td><td width=\"70\"><b>{p1}</b></td><td width=\"110\"><font color=\"#990000\">{p2}</font></td></tr>"
            );
            BuiltRecord {
                html,
                gt: GtRecord {
                    lines: vec![t, p1, p2],
                },
            }
        }
        SectionStyle::DivRecords | SectionStyle::PairedDivRecords => {
            let s = snippet(rng, query);
            let mut html =
                format!("<div class=\"rec\"><a href=\"http://www.{site}/doc/{uid}\">{t}</a>");
            let mut lines = vec![t];
            if with_optional {
                html.push_str(&format!("<br><font size=\"-1\">{s}</font>"));
                lines.push(s);
            }
            html.push_str("</div>");
            BuiltRecord {
                html,
                gt: GtRecord { lines },
            }
        }
        SectionStyle::ListItems => {
            let s = snippet(rng, query);
            let html = format!("<li><a href=\"http://www.{site}/doc/{uid}\">{t}</a> - {s}</li>");
            BuiltRecord {
                html,
                gt: GtRecord {
                    lines: vec![format!("{t} - {s}")],
                },
            }
        }
        SectionStyle::NewsParagraphs => {
            let src = pick(rng, SOURCES).to_string();
            let d = date(rng);
            let s = snippet(rng, query);
            let byline = format!("{src}, {d}");
            let mut html =
                format!("<p><a href=\"http://www.{site}/news/{uid}\">{t}</a><br><i>{byline}</i>");
            let mut lines = vec![t, byline];
            if with_optional {
                html.push_str(&format!("<br>{s}"));
                lines.push(s);
            }
            html.push_str("</p>");
            BuiltRecord {
                html,
                gt: GtRecord { lines },
            }
        }
        SectionStyle::ImageCaptionDivs => {
            let s = snippet(rng, query);
            let html = format!(
                "<div class=\"rec\"><img src=\"/thumb/{uid}.jpg\" width=\"60\"> <a href=\"http://www.{site}/g/{uid}\">{t}</a><br>{s}</div>"
            );
            BuiltRecord {
                html,
                gt: GtRecord { lines: vec![t, s] },
            }
        }
        SectionStyle::TwoRowRecords => {
            let s = snippet(rng, query);
            let mut html =
                format!("<tr><td><a href=\"http://www.{site}/r/{uid}\">{t}</a></td></tr>");
            let mut lines = vec![t];
            if with_optional {
                html.push_str(&format!(
                    "<tr><td><font size=\"-1\" color=\"#555555\">{s}</font></td></tr>"
                ));
                lines.push(s);
            }
            BuiltRecord {
                html,
                gt: GtRecord { lines },
            }
        }
        SectionStyle::DlRecords => {
            let s = snippet(rng, query);
            let mut html = format!("<dt><a href=\"http://www.{site}/e/{uid}\">{t}</a></dt>");
            let mut lines = vec![t];
            if with_optional {
                html.push_str(&format!("<dd>{s}</dd>"));
                lines.push(s);
            }
            BuiltRecord {
                html,
                gt: GtRecord { lines },
            }
        }
        SectionStyle::DirectoryDivs => {
            let addr = format!(
                "{} {} Street, {}",
                rng.random_range(10..999),
                capitalize(pick(rng, TOPIC_WORDS)),
                capitalize(pick(rng, TOPIC_WORDS))
            );
            let phone = format!(
                "Phone: ({:03}) {:03}-{:04}",
                rng.random_range(200..999),
                rng.random_range(200..999),
                rng.random_range(0..10000)
            );
            let html = format!(
                "<div class=\"rec\"><a href=\"http://www.{site}/d/{uid}\"><b>{t}</b></a><br>{addr}<br><font size=\"-1\">{phone}</font></div>"
            );
            BuiltRecord {
                html,
                gt: GtRecord {
                    lines: vec![t, addr, phone],
                },
            }
        }
    }
}

/// Lines a record's *rendered* form produces, with image-only lines mapped
/// to the placeholder. (Currently no template renders an image-only line —
/// thumbnails share the title line — but scorers must map them uniformly.)
pub fn placeholder_note() -> &'static str {
    IMG_LINE
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_style_builds() {
        let mut rng = StdRng::seed_from_u64(7);
        for &style in ALL_STYLES {
            let r = build_record(
                style,
                &mut rng,
                "site0.com",
                "e0q0s0r0",
                "knee injury",
                true,
            );
            assert!(!r.html.is_empty());
            assert!(!r.gt.lines.is_empty());
            assert!(r.gt.lines.iter().all(|l| !l.is_empty()));
        }
    }

    #[test]
    fn optional_line_toggles() {
        let mut rng = StdRng::seed_from_u64(7);
        let with = build_record(
            SectionStyle::TableRowsLinkSnippet,
            &mut rng,
            "s.com",
            "u1",
            "q",
            true,
        );
        let mut rng = StdRng::seed_from_u64(7);
        let without = build_record(
            SectionStyle::TableRowsLinkSnippet,
            &mut rng,
            "s.com",
            "u1",
            "q",
            false,
        );
        assert_eq!(with.gt.lines.len(), 3);
        assert_eq!(without.gt.lines.len(), 2);
    }

    #[test]
    fn uid_lands_in_title_line() {
        let mut rng = StdRng::seed_from_u64(7);
        let r = build_record(
            SectionStyle::DivRecords,
            &mut rng,
            "s.com",
            "UNIQ42",
            "q",
            true,
        );
        assert!(r.gt.lines[0].contains("UNIQ42"));
    }

    #[test]
    fn deterministic_for_same_rng_seed() {
        let mk = || {
            let mut rng = StdRng::seed_from_u64(99);
            build_record(
                SectionStyle::NewsParagraphs,
                &mut rng,
                "s.com",
                "u",
                "q",
                true,
            )
        };
        assert_eq!(mk().html, mk().html);
    }
}
