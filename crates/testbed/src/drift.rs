//! Drift simulation: an engine that redesigns its result-page template
//! mid-stream.
//!
//! The paper motivates maintenance with engines changing their markup
//! out from under a deployed wrapper (§1). A [`DriftScenario`] models
//! exactly that: one engine identity with a *before* template and a
//! redesigned *after* template, and a serving schedule that phases the
//! redesign in — first not at all, then on every third page (a partial
//! rollout / A-B test, the hardest case for drift detection), then
//! everywhere. Feeding the schedule through a wrapper learned on the
//! *before* template must walk `mse-core`'s drift verdict through
//! Stable → Degrading → Broken with no truth labels involved.

use crate::records::SectionStyle;
use crate::spec::{EngineSpec, HeaderStyle};
use crate::truth::GeneratedPage;

/// Which template serves a given stream index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftPhase {
    /// Only the original template serves.
    Before,
    /// Partial rollout: every third page is the redesign.
    Mixed,
    /// Only the redesign serves.
    After,
}

/// One engine, two templates, and a phased rollout schedule.
#[derive(Clone, Debug)]
pub struct DriftScenario {
    /// The template the wrapper was learned on.
    pub before: EngineSpec,
    /// The redesign: same engine identity (id / name / site / section
    /// names), different section formats and headers.
    pub after: EngineSpec,
    /// First stream index at which redesigned pages appear (1-in-3).
    pub degrade_at: usize,
    /// First stream index from which *only* redesigned pages serve.
    pub break_at: usize,
}

/// A template the learner is known to handle: no non-sibling record
/// structure and no headerless sections (both are documented failure
/// modes, not drift — a drift scenario must isolate the redesign).
fn learnable(e: &EngineSpec) -> bool {
    e.sections
        .iter()
        .all(|s| s.style != SectionStyle::PairedDivRecords && s.header != HeaderStyle::None)
}

/// A genuinely different layout for every section the engines share: the
/// container markup itself must change (`<table>` → `<ul>`, …), not just
/// the header or a cosmetic attribute. A wrapper keys on the container
/// path and the record tag structure, and a learned container path
/// resolves with sibling slack — a redesign that keeps the container
/// intact can still be silently served, which is exactly NOT what a
/// drift scenario should produce.
fn differs(a: &EngineSpec, b: &EngineSpec) -> bool {
    if a.sections.is_empty() || b.sections.is_empty() {
        return false;
    }
    a.sections
        .iter()
        .zip(&b.sections)
        .all(|(x, y)| x.style.open() != y.style.open())
}

impl DriftScenario {
    /// Build a scenario for engine `engine_id`: the *before* template is
    /// exactly [`EngineSpec::generate`]'s engine for `(seed, engine_id)`,
    /// the *after* template is a deterministic redesign that keeps the
    /// engine's identity but changes section formats. `break_at` is
    /// clamped above `degrade_at` so the phases are always ordered.
    pub fn new(seed: u64, engine_id: usize, degrade_at: usize, break_at: usize) -> DriftScenario {
        let before = EngineSpec::generate(seed, engine_id);
        let mut fallback: Option<EngineSpec> = None;
        let mut chosen: Option<EngineSpec> = None;
        for salt in 1..=64u64 {
            let reseed = seed
                ^ 0xD21F_u64
                    .wrapping_add(salt)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut cand = EngineSpec::with_profile(reseed, engine_id, before.multi);
            // The redesign is the same engine, re-rendered: keep its
            // public identity and section names where they line up.
            cand.id = before.id;
            cand.name = before.name.clone();
            cand.site = before.site.clone();
            for (i, s) in cand.sections.iter_mut().enumerate() {
                if let Some(bs) = before.sections.get(i) {
                    s.name = bs.name.clone();
                }
            }
            if learnable(&cand) && differs(&before, &cand) {
                chosen = Some(cand);
                break;
            }
            fallback.get_or_insert(cand);
        }
        // 64 independent draws all colliding with the before-layout AND
        // all unlearnable is out of reach for the generator's style
        // distribution; the fallback only guards the type system.
        let after = chosen.or(fallback).unwrap_or_else(|| before.clone());
        DriftScenario {
            before,
            after,
            degrade_at,
            break_at: break_at.max(degrade_at + 1),
        }
    }

    /// The rollout phase of stream index `idx`.
    pub fn phase(&self, idx: usize) -> DriftPhase {
        if idx < self.degrade_at {
            DriftPhase::Before
        } else if idx < self.break_at {
            DriftPhase::Mixed
        } else {
            DriftPhase::After
        }
    }

    /// Whether stream index `idx` serves the redesigned template: always
    /// in the After phase, every third page in the Mixed phase.
    pub fn serves_redesign(&self, idx: usize) -> bool {
        match self.phase(idx) {
            DriftPhase::Before => false,
            DriftPhase::Mixed => (idx - self.degrade_at).is_multiple_of(3),
            DriftPhase::After => true,
        }
    }

    /// The page served at stream index `idx`.
    pub fn page(&self, idx: usize) -> GeneratedPage {
        if self.serves_redesign(idx) {
            self.after.page(idx)
        } else {
            self.before.page(idx)
        }
    }

    /// Sample pages for learning the *before* wrapper. Query indices are
    /// offset away from the serving stream so samples and stream pages
    /// never coincide.
    pub fn sample_pages(&self, n: usize) -> Vec<GeneratedPage> {
        (0..n).map(|q| self.before.page(1000 + q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_deterministic() {
        let a = DriftScenario::new(2006, 4, 10, 20);
        let b = DriftScenario::new(2006, 4, 10, 20);
        assert_eq!(a.before.name, b.before.name);
        assert_eq!(a.page(0).html, b.page(0).html);
        assert_eq!(a.page(15).html, b.page(15).html);
        assert_eq!(a.page(25).html, b.page(25).html);
    }

    #[test]
    fn redesign_keeps_identity_but_changes_layout() {
        let s = DriftScenario::new(2006, 4, 10, 20);
        assert_eq!(s.before.name, s.after.name);
        assert_eq!(s.before.site, s.after.site);
        assert_eq!(s.before.sections[0].name, s.after.sections[0].name);
        assert!(differs(&s.before, &s.after));
        assert!(learnable(&s.after));
        assert_ne!(s.before.page(0).html, s.after.page(0).html);
    }

    #[test]
    fn schedule_phases_in_the_redesign() {
        let s = DriftScenario::new(2006, 4, 9, 18);
        assert!((0..9).all(|i| !s.serves_redesign(i)));
        let mixed: Vec<bool> = (9..18).map(|i| s.serves_redesign(i)).collect();
        assert_eq!(mixed.iter().filter(|&&b| b).count(), 3, "{mixed:?}");
        assert!((18..30).all(|i| s.serves_redesign(i)));
        assert_eq!(s.phase(0), DriftPhase::Before);
        assert_eq!(s.phase(9), DriftPhase::Mixed);
        assert_eq!(s.phase(18), DriftPhase::After);
    }

    #[test]
    fn break_at_is_clamped_after_degrade_at() {
        let s = DriftScenario::new(2006, 4, 10, 5);
        assert_eq!(s.break_at, 11);
    }

    #[test]
    fn sample_pages_are_before_template() {
        let s = DriftScenario::new(2006, 4, 10, 20);
        let samples = s.sample_pages(5);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0].html, s.before.page(1000).html);
    }
}
