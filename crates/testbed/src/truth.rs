//! Ground truth types.
//!
//! A generated page carries exact ground truth: the ordered list of dynamic
//! sections and, per section, the ordered list of records. A record is
//! identified by the sequence of content-line texts it renders to (the
//! generator predicts the renderer's output; `tests/` in this crate verify
//! the prediction against `mse-render`). Comparing extracted line ranges to
//! ground truth therefore reduces to comparing text sequences — unique ids
//! embedded in every record title make the match unambiguous.

use serde::{Deserialize, Serialize};

/// Placeholder text the renderer-side scorer substitutes for an image line.
pub const IMG_LINE: &str = "[IMG]";
/// Placeholder for an `<hr>` line.
pub const HR_LINE: &str = "[HR]";

/// One expected record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GtRecord {
    /// Expected content-line texts, in order. Image-only lines appear as
    /// [`IMG_LINE`], rules as [`HR_LINE`].
    pub lines: Vec<String>,
}

impl GtRecord {
    /// Canonical record key: joined line texts.
    pub fn key(&self) -> String {
        self.lines.join("\n")
    }
}

/// One expected dynamic section instance.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GtSection {
    /// The section schema's stable name within its engine (e.g. "News").
    pub schema: String,
    pub records: Vec<GtRecord>,
}

/// Ground truth for a whole result page.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    pub sections: Vec<GtSection>,
}

impl GroundTruth {
    pub fn total_records(&self) -> usize {
        self.sections.iter().map(|s| s.records.len()).sum()
    }
}

/// A generated result page: HTML plus its ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratedPage {
    pub html: String,
    pub truth: GroundTruth,
    /// The query string the page "answers" (used by DSE's clean_line).
    pub query: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_key_joins_lines() {
        let r = GtRecord {
            lines: vec!["title".into(), "snippet".into()],
        };
        assert_eq!(r.key(), "title\nsnippet");
    }

    #[test]
    fn total_records_sums_sections() {
        let gt = GroundTruth {
            sections: vec![
                GtSection {
                    schema: "a".into(),
                    records: vec![GtRecord {
                        lines: vec!["x".into()],
                    }],
                },
                GtSection {
                    schema: "b".into(),
                    records: vec![
                        GtRecord {
                            lines: vec!["y".into()],
                        },
                        GtRecord {
                            lines: vec!["z".into()],
                        },
                    ],
                },
            ],
        };
        assert_eq!(gt.total_records(), 3);
    }
}
