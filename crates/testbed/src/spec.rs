//! Engine specifications and result-page generation.
//!
//! An [`EngineSpec`] is a concrete *result page schema* in the paper's §2
//! sense: static chrome, semi-dynamic lines (match counts, query echo,
//! "Click Here for More"), and an ordered list of section schemas with
//! per-query appearance probabilities. Generating a page instantiates the
//! schema for one query — exactly the paper's model of how a search
//! engine's script program produces result pages.

use crate::records::{build_record, SectionStyle, ALL_STYLES};
use crate::truth::{GeneratedPage, GroundTruth, GtSection};
use crate::words::{pick, ENGINE_NAME_A, ENGINE_NAME_B, QUERIES, SECTION_NAMES, TOPIC_WORDS};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// How a section announces itself (its LBM, paper §4.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeaderStyle {
    /// `<p><b><font color>NAME</font></b></p>`
    BoldLine,
    /// `<h3>NAME</h3>`
    H3,
    /// `<div class=hd><font color><b>NAME</b></font></div>`
    ColoredDiv,
    /// No explicit boundary marker (the paper's 200-engine survey found
    /// 3.1% of sections lack one).
    None,
}

/// One section schema of an engine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SectionSchemaSpec {
    pub name: String,
    pub style: SectionStyle,
    pub header: HeaderStyle,
    /// Emit a "Click Here for More …" RBM when the instance has > 5 records.
    pub more_rbm: bool,
    /// Render the more-link INSIDE the section container (as a final row /
    /// item) instead of after it — common in 2006 layouts and a trap for
    /// record partitioning.
    pub more_inside: bool,
    /// Probability the schema has an instance on a given page (< 1 produces
    /// the paper's *hidden section* phenomenon).
    pub appearance_prob: f64,
    pub min_records: usize,
    pub max_records: usize,
    /// Per-record probability of carrying the optional snippet line.
    pub optional_line_prob: f64,
}

/// A synthetic search engine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineSpec {
    pub id: usize,
    pub seed: u64,
    pub name: String,
    pub site: String,
    /// More than one section schema?
    pub multi: bool,
    /// Render a left navigation column in a separate table cell.
    pub two_column: bool,
    /// Include a repeated-format static link list (an MRE trap that must be
    /// discarded as static content, paper §5.3 Case 5).
    pub nav_trap: bool,
    /// Static nav link labels (fixed per engine so they are template
    /// content across pages).
    pub nav_labels: Vec<String>,
    pub sections: Vec<SectionSchemaSpec>,
}

fn mix(seed: u64, salt: u64) -> u64 {
    // splitmix64-style stateless mixing for independent substreams
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl EngineSpec {
    /// Generate a standalone engine: multi-section iff `id % 3 == 0`.
    pub fn generate(seed: u64, id: usize) -> EngineSpec {
        Self::with_profile(seed, id, id.is_multiple_of(3))
    }

    /// Generate an engine with an explicit single/multi-section profile.
    pub fn with_profile(seed: u64, id: usize, multi: bool) -> EngineSpec {
        let eseed = mix(seed, id as u64 + 1);
        let mut rng = StdRng::seed_from_u64(eseed);
        let name = format!(
            "{}{}",
            pick(&mut rng, ENGINE_NAME_A),
            pick(&mut rng, ENGINE_NAME_B)
        );
        let site = format!("{}{}.com", name.to_ascii_lowercase(), id);
        let two_column = rng.random_bool(0.3);
        let nav_trap = two_column || rng.random_bool(0.4);
        let nav_labels: Vec<String> = {
            let n = rng.random_range(4..=7);
            let mut labels = Vec::new();
            while labels.len() < n {
                let w = crate::records_capitalize(pick(&mut rng, TOPIC_WORDS));
                if !labels.contains(&w) {
                    labels.push(w);
                }
            }
            labels
        };

        let sections = if multi {
            let k = rng.random_range(2..=5);
            // ~40% of multi engines carry a RARE schema — one that appears
            // on few pages, often on none of the five sample pages: the
            // paper's *hidden section* phenomenon (§5.8).
            let rare_last = rng.random_bool(0.4);
            let mut names: Vec<&str> = Vec::new();
            while names.len() < k {
                let n = pick(&mut rng, SECTION_NAMES);
                if !names.contains(&n) {
                    names.push(n);
                }
            }
            names
                .into_iter()
                .enumerate()
                .map(|(i, n)| {
                    let style = random_style(&mut rng);
                    SectionSchemaSpec {
                        name: n.to_string(),
                        style,
                        header: random_header(&mut rng),
                        more_rbm: rng.random_bool(0.7),
                        more_inside: rng.random_bool(0.35),
                        appearance_prob: if i == 0 {
                            1.0
                        } else if rare_last && i == k - 1 {
                            0.15 + rng.random_range(0.0..0.2)
                        } else {
                            0.55 + rng.random_range(0.0..0.4)
                        },
                        min_records: 1,
                        max_records: rng.random_range(4..=8),
                        optional_line_prob: 0.75,
                    }
                })
                .collect()
        } else {
            vec![SectionSchemaSpec {
                name: "Web Results".to_string(),
                style: random_style(&mut rng),
                header: random_header(&mut rng),
                more_rbm: rng.random_bool(0.7),
                more_inside: rng.random_bool(0.35),
                appearance_prob: 1.0,
                min_records: 8,
                max_records: 15,
                optional_line_prob: 0.8,
            }]
        };

        EngineSpec {
            id,
            seed: eseed,
            name,
            site,
            multi,
            two_column,
            nav_trap,
            nav_labels,
            sections,
        }
    }

    /// Generate the result page for query index `query_idx`.
    pub fn page(&self, query_idx: usize) -> GeneratedPage {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, 0xF00D + query_idx as u64));
        let query = QUERIES[query_idx % QUERIES.len()].to_string();
        let matches = rng.random_range(23..4096);

        let mut body = String::new();
        let mut truth = GroundTruth::default();

        // --- static chrome (template) ---
        body.push_str(&format!(
            "<table width=\"100%\" bgcolor=\"#334466\"><tr><td><h1><font color=\"white\">{}</font></h1></td></tr></table>\n",
            self.name
        ));
        body.push_str(&format!(
            "<form action=\"/search\" method=\"get\"><input type=\"text\" name=\"q\" size=\"30\" value=\"{query}\"><input type=\"submit\" value=\"Search\"></form>\n"
        ));
        // --- semi-dynamic info line ---
        body.push_str(&format!(
            "<p>Your search for <b>{query}</b> returned {matches} matches.</p>\n"
        ));

        let nav_html = if self.nav_trap {
            let mut nav = String::from("<div class=\"nav\"><b>Browse</b><br>");
            for label in &self.nav_labels {
                nav.push_str(&format!("<a href=\"/cat/{label}\">{label}</a><br>"));
            }
            nav.push_str("</div>");
            nav
        } else {
            String::new()
        };

        // --- dynamic sections ---
        let mut content = String::new();
        for (si, schema) in self.sections.iter().enumerate() {
            let present = schema.appearance_prob >= 1.0 || rng.random_bool(schema.appearance_prob);
            if !present {
                continue;
            }
            let n = rng.random_range(schema.min_records..=schema.max_records);
            let mut gt = GtSection {
                schema: schema.name.clone(),
                records: Vec::new(),
            };

            match schema.header {
                HeaderStyle::BoldLine => content.push_str(&format!(
                    "<p><b><font color=\"#003366\">{}</font></b></p>\n",
                    schema.name
                )),
                HeaderStyle::H3 => content.push_str(&format!("<h3>{}</h3>\n", schema.name)),
                HeaderStyle::ColoredDiv => content.push_str(&format!(
                    "<div class=\"hd\"><font color=\"#660000\"><b>{}</b></font></div>\n",
                    schema.name
                )),
                HeaderStyle::None => {}
            }

            content.push_str(schema.style.open());
            let mut pending_pair: Vec<String> = Vec::new();
            for ri in 0..n {
                let uid = format!("e{}q{}s{}r{}", self.id, query_idx, si, ri);
                let with_optional = rng.random_bool(schema.optional_line_prob);
                let rec = build_record(
                    schema.style,
                    &mut rng,
                    &self.site,
                    &uid,
                    &query,
                    with_optional,
                );
                if schema.style.non_sibling() {
                    pending_pair.push(rec.html);
                    if pending_pair.len() == 2 || ri + 1 == n {
                        content.push_str(&format!(
                            "<div class=\"pair\">{}</div>",
                            pending_pair.join("")
                        ));
                        pending_pair.clear();
                    }
                } else {
                    content.push_str(&rec.html);
                }
                content.push('\n');
                gt.records.push(rec.gt);
            }
            let more = schema.more_rbm && n > 5;
            if more && schema.more_inside {
                content.push_str(&more_inside_html(schema.style, si, &schema.name));
            }
            content.push_str(schema.style.close());
            content.push('\n');
            if more && !schema.more_inside {
                content.push_str(&format!(
                    "<p><a href=\"/more?cat={si}\">Click Here for More {}</a></p>\n",
                    schema.name
                ));
            }
            truth.sections.push(gt);
        }

        if self.two_column {
            body.push_str(&format!(
                "<table width=\"100%\"><tr><td width=\"150\" valign=\"top\">{nav_html}</td><td valign=\"top\">{content}</td></tr></table>\n"
            ));
        } else {
            body.push_str(&nav_html);
            body.push('\n');
            body.push_str(&content);
        }

        // --- semi-dynamic pagination + static footer ---
        body.push_str(
            "<p class=\"pager\">Result Page: <b>1</b> <a href=\"/p2\">2</a> <a href=\"/p3\">3</a> <a href=\"/p4\">4</a> <a href=\"/next\">Next</a></p>\n",
        );
        body.push_str(&format!(
            "<hr><p><font size=\"-2\">Copyright 2006 {} Inc. | <a href=\"/about\">About</a> | <a href=\"/privacy\">Privacy Policy</a></font></p>\n",
            self.name
        ));

        let html = format!(
            "<html><head><title>{} - search results for {query}</title></head><body bgcolor=\"#ffffff\">\n{body}</body></html>",
            self.name
        );
        GeneratedPage { html, truth, query }
    }

    /// Shortcut: page HTML only.
    pub fn result_page_html(&self, query_idx: usize) -> String {
        self.page(query_idx).html
    }
}

/// The in-container form of the "Click Here for More" link, matching the
/// container's child structure.
fn more_inside_html(style: SectionStyle, si: usize, name: &str) -> String {
    let link = format!("<a href=\"/more?cat={si}\">Click Here for More {name}</a>");
    match style {
        SectionStyle::TableRowsLinkSnippet
        | SectionStyle::TableCellsRow
        | SectionStyle::PriceRows
        | SectionStyle::TwoRowRecords => {
            format!("<tr><td colspan=\"3\" align=\"center\">{link}</td></tr>")
        }
        SectionStyle::ListItems => format!("<li>{link}</li>"),
        SectionStyle::DlRecords => format!("<dt>{link}</dt>"),
        SectionStyle::NewsParagraphs => format!("<p>{link}</p>"),
        SectionStyle::DivRecords
        | SectionStyle::ImageCaptionDivs
        | SectionStyle::DirectoryDivs
        | SectionStyle::PairedDivRecords => format!("<div class=\"more\">{link}</div>"),
    }
}

fn random_style<R: Rng>(rng: &mut R) -> SectionStyle {
    // Mostly the realistic formats; 5% of sections use the non-sibling
    // PairedDivRecords structure the paper names as its own failure mode.
    if rng.random_bool(0.05) {
        SectionStyle::PairedDivRecords
    } else {
        ALL_STYLES[rng.random_range(0..ALL_STYLES.len())]
    }
}

fn random_header<R: Rng>(rng: &mut R) -> HeaderStyle {
    // ~3% of sections have no explicit SBM (paper §2: 96.9% have one).
    let r: f64 = rng.random_range(0.0..1.0);
    if r < 0.03 {
        HeaderStyle::None
    } else if r < 0.40 {
        HeaderStyle::BoldLine
    } else if r < 0.72 {
        HeaderStyle::H3
    } else {
        HeaderStyle::ColoredDiv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_generation_deterministic() {
        let a = EngineSpec::generate(2006, 5);
        let b = EngineSpec::generate(2006, 5);
        assert_eq!(a.name, b.name);
        assert_eq!(a.sections.len(), b.sections.len());
        let pa = a.page(0);
        let pb = b.page(0);
        assert_eq!(pa.html, pb.html);
        assert_eq!(pa.truth, pb.truth);
    }

    #[test]
    fn different_engines_differ() {
        let a = EngineSpec::generate(2006, 1);
        let b = EngineSpec::generate(2006, 2);
        assert_ne!(a.page(0).html, b.page(0).html);
    }

    #[test]
    fn single_engines_have_one_schema() {
        let e = EngineSpec::with_profile(2006, 50, false);
        assert_eq!(e.sections.len(), 1);
        assert!((e.sections[0].appearance_prob - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn multi_engines_have_several_schemas() {
        let e = EngineSpec::with_profile(2006, 0, true);
        assert!(e.sections.len() >= 2);
    }

    #[test]
    fn pages_vary_by_query() {
        let e = EngineSpec::generate(2006, 3);
        let p0 = e.page(0);
        let p1 = e.page(1);
        assert_ne!(p0.html, p1.html);
        assert_ne!(p0.query, p1.query);
    }

    #[test]
    fn ground_truth_nonempty_and_first_schema_always_present() {
        for id in 0..20 {
            let e = EngineSpec::generate(2006, id);
            for q in 0..10 {
                let p = e.page(q);
                assert!(!p.truth.sections.is_empty(), "engine {id} page {q}");
                assert_eq!(p.truth.sections[0].schema, e.sections[0].name);
            }
        }
    }

    #[test]
    fn hidden_sections_exist_somewhere() {
        // Across multi engines, at least one schema must be absent on at
        // least one page (the hidden-section phenomenon).
        let mut saw_absent = false;
        for id in 0..30 {
            let e = EngineSpec::with_profile(2006, id, true);
            for q in 0..10 {
                let p = e.page(q);
                if p.truth.sections.len() < e.sections.len() {
                    saw_absent = true;
                }
            }
        }
        assert!(saw_absent);
    }

    #[test]
    fn record_uids_unique_per_page() {
        let e = EngineSpec::generate(2006, 9);
        let p = e.page(2);
        let mut keys: Vec<String> = p
            .truth
            .sections
            .iter()
            .flat_map(|s| s.records.iter().map(|r| r.key()))
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(before, keys.len());
    }

    #[test]
    fn html_is_parseable_and_has_query_echo() {
        let e = EngineSpec::generate(2006, 4);
        let p = e.page(1);
        let dom = mse_dom::parse(&p.html);
        let text = dom.text_of(dom.root());
        assert!(text.contains(&p.query));
        assert!(text.contains("matches."));
    }
}
