//! # mse-testbed
//!
//! Synthetic search-engine corpus generator with exact ground truth —
//! the stand-in for the paper's unavailable 2006 test bed (119 real search
//! engines × 10 manually-queried result pages). See DESIGN.md §3 for the
//! substitution argument.
//!
//! Every engine is generated deterministically from `(seed, engine_id)`;
//! every page from `(engine_seed, query_id)`. Pages exhibit the phenomena
//! the paper's pipeline is built to handle: static chrome templates,
//! semi-dynamic lines with dynamic components (match counts, query echo,
//! "Click Here for More …"), multiple dynamic sections with *different*
//! formats on the same page, sections that appear only for some queries
//! (hidden sections), sections with 1–2 records, headerless sections,
//! false-SBM traps ("Buy new: $…", "Phone: …"), static repeated-format
//! navigation link lists, and non-sibling record structures.

// Panic-free and unsafe-free gates (see DESIGN.md §12): untrusted input
// must never abort the process, and the counting allocator in `mse-bench`
// is the workspace's only unsafe carve-out. Tests keep their unwraps.
#![deny(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod corpus;
pub mod drift;
pub mod records;
pub mod spec;
pub mod truth;
pub mod words;

pub use corpus::{Corpus, CorpusConfig, CorpusStats};
pub use drift::{DriftPhase, DriftScenario};
pub use records::{build_record, BuiltRecord, SectionStyle};
pub use spec::{EngineSpec, HeaderStyle, SectionSchemaSpec};
pub use truth::{GeneratedPage, GroundTruth, GtRecord, GtSection, HR_LINE, IMG_LINE};

/// Capitalize a word (shared by record and spec generators).
pub(crate) fn records_capitalize(w: &str) -> String {
    let mut c = w.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}
