//! The ground-truth contract: the generator *predicts* the content lines
//! each record will render to; this test verifies the prediction against
//! the real `mse-render` layouter across a whole corpus. Every predicted
//! record must appear as a consecutive run of content lines, in order,
//! without overlaps.

use mse_render::{LineType, RenderedPage};
use mse_testbed::{Corpus, CorpusConfig, HR_LINE, IMG_LINE};

/// Map a rendered line to its ground-truth text form.
fn gt_text(line: &mse_render::ContentLine) -> String {
    match line.ltype {
        LineType::Hr => HR_LINE.to_string(),
        LineType::Image if line.text.is_empty() => IMG_LINE.to_string(),
        _ => line.text.clone(),
    }
}

#[test]
fn ground_truth_lines_match_renderer_across_corpus() {
    let corpus = Corpus::generate(CorpusConfig::small(11));
    let mut checked_records = 0usize;
    for engine in &corpus.engines {
        for q in 0..corpus.config.pages_per_engine {
            let page = engine.page(q);
            let rendered = RenderedPage::from_html(&page.html);
            let texts: Vec<String> = rendered.lines.iter().map(gt_text).collect();

            let mut cursor = 0usize;
            for section in &page.truth.sections {
                for record in &section.records {
                    // Find the record's line sequence at or after `cursor`.
                    let found =
                        (cursor..texts.len().saturating_sub(record.lines.len() - 1)).find(|&i| {
                            record
                                .lines
                                .iter()
                                .enumerate()
                                .all(|(k, l)| texts[i + k] == *l)
                        });
                    match found {
                        Some(i) => {
                            cursor = i + record.lines.len();
                            checked_records += 1;
                        }
                        None => panic!(
                            "engine {} page {q}: record not found in rendered lines\n\
                             expected lines: {:?}\nrendered tail: {:?}",
                            engine.id,
                            record.lines,
                            &texts[cursor.min(texts.len())..texts.len().min(cursor + 12)]
                        ),
                    }
                }
            }
        }
    }
    assert!(
        checked_records > 500,
        "only {checked_records} records checked"
    );
}

#[test]
fn records_do_not_share_lines_with_chrome() {
    // Every record line should be distinct from any line appearing before
    // the first section (chrome/info lines) — a sanity check that the
    // generator's unique ids keep records unambiguous.
    let corpus = Corpus::generate(CorpusConfig::small(13));
    let engine = &corpus.engines[0];
    let page = engine.page(0);
    let rendered = RenderedPage::from_html(&page.html);
    let texts: Vec<String> = rendered.lines.iter().map(gt_text).collect();
    for section in &page.truth.sections {
        for record in &section.records {
            let occurrences = texts.iter().filter(|t| **t == record.lines[0]).count();
            assert_eq!(
                occurrences, 1,
                "title line duplicated: {:?}",
                record.lines[0]
            );
        }
    }
}
