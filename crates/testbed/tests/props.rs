//! Property tests: the generator must be deterministic, structurally
//! valid, and renderer-consistent for arbitrary seeds.

use mse_render::{LineType, RenderedPage};
use mse_testbed::{EngineSpec, HR_LINE, IMG_LINE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Determinism across independent generations.
    #[test]
    fn engine_and_pages_deterministic(seed in any::<u64>(), id in 0usize..200, q in 0usize..10) {
        let a = EngineSpec::generate(seed, id);
        let b = EngineSpec::generate(seed, id);
        prop_assert_eq!(&a.name, &b.name);
        let pa = a.page(q);
        let pb = b.page(q);
        prop_assert_eq!(pa.html, pb.html);
        prop_assert_eq!(pa.truth, pb.truth);
    }

    /// Every generated page parses, renders, and its ground-truth records
    /// appear as consecutive rendered lines in order.
    #[test]
    fn ground_truth_always_renderer_consistent(seed in any::<u64>(), id in 0usize..60) {
        let engine = EngineSpec::generate(seed, id);
        for q in [0usize, 4, 9] {
            let page = engine.page(q);
            let rendered = RenderedPage::from_html(&page.html);
            let texts: Vec<String> = rendered
                .lines
                .iter()
                .map(|l| match l.ltype {
                    LineType::Hr => HR_LINE.to_string(),
                    LineType::Image if l.text.is_empty() => IMG_LINE.to_string(),
                    _ => l.text.clone(),
                })
                .collect();
            let mut cursor = 0usize;
            for section in &page.truth.sections {
                for record in &section.records {
                    prop_assert!(!record.lines.is_empty());
                    let found = (cursor..=texts.len().saturating_sub(record.lines.len()))
                        .find(|&i| record.lines.iter().enumerate().all(|(k, l)| texts[i + k] == *l));
                    match found {
                        Some(i) => cursor = i + record.lines.len(),
                        None => {
                            return Err(TestCaseError::fail(format!(
                                "seed {seed} engine {id} page {q}: record {:?} not in render",
                                record.lines
                            )));
                        }
                    }
                }
            }
        }
    }

    /// Schema invariants: first schema always present, probabilities valid,
    /// record-count ranges sane.
    #[test]
    fn schema_invariants(seed in any::<u64>(), id in 0usize..200) {
        let engine = EngineSpec::generate(seed, id);
        prop_assert!(!engine.sections.is_empty());
        prop_assert!((engine.sections[0].appearance_prob - 1.0).abs() < f64::EPSILON);
        for s in &engine.sections {
            prop_assert!(s.appearance_prob > 0.0 && s.appearance_prob <= 1.0);
            prop_assert!(s.min_records >= 1 && s.min_records <= s.max_records);
        }
        if !engine.multi {
            prop_assert_eq!(engine.sections.len(), 1);
        } else {
            prop_assert!(engine.sections.len() >= 2);
        }
    }
}
