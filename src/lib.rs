//! # mse — Multiple Section Extraction
//!
//! Façade crate for the reproduction of *"Automatic Extraction of Dynamic
//! Record Sections From Search Engine Result Pages"* (Zhao, Meng, Yu —
//! VLDB 2006). It re-exports the public API of every workspace crate so
//! that downstream users can depend on a single crate:
//!
//! ```
//! use mse::prelude::*;
//!
//! // Generate a tiny synthetic search engine and learn its wrapper.
//! let engine = EngineSpec::generate(42, 7);
//! let pages: Vec<String> = (0..5).map(|q| engine.result_page_html(q)).collect();
//! let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
//! let wrappers = Mse::new(MseConfig::default()).build(&refs).unwrap();
//! let extraction = wrappers.extract(&engine.result_page_html(99));
//! assert!(!extraction.sections.is_empty());
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! paper→module map and `EXPERIMENTS.md` for the reproduced evaluation.

// Panic-free and unsafe-free gates (see DESIGN.md §12): untrusted input
// must never abort the process, and the counting allocator in `mse-bench`
// is the workspace's only unsafe carve-out. Tests keep their unwraps.
#![deny(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub use mse_algos as algos;
pub use mse_analyze as analyze;
pub use mse_annotate as annotate;
pub use mse_baselines as baselines;
pub use mse_core as core;
pub use mse_dom as dom;
pub use mse_eval as eval;
pub use mse_render as render;
pub use mse_store as store;
pub use mse_testbed as testbed;
pub use mse_treedit as treedit;

/// Convenient glob import for applications.
pub mod prelude {
    pub use mse_annotate::{annotate_extraction, AnnotationModel, Role};
    pub use mse_core::{
        shadow_relearn, DriftThresholds, DriftTracker, DriftVerdict, HealthReport, RelearnOutcome,
    };
    pub use mse_core::{
        BuildError, Diagnostic, ExtractError, ExtractedSection, Extraction, Mse, MseConfig,
        MseError, ResourceBudget, SectionWrapperSet, Stage,
    };
    pub use mse_dom::{parse, parse_with_limits, Dom, DomError, ParseLimits};
    pub use mse_eval::{score_engine, CorpusScore};
    pub use mse_render::{render, RenderError, RenderedPage};
    pub use mse_store::{relearn_into_store, Provenance, Store};
    pub use mse_testbed::{Corpus, CorpusConfig, DriftScenario, EngineSpec};
}
