//! Offline drop-in for the subset of `serde` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the real serde cannot be
//! fetched. This stub keeps the same surface the workspace relies on —
//! `derive(Serialize, Deserialize)`, `serde_json::{to_string, to_string_pretty,
//! from_str}` — but models serialization as conversion through a concrete
//! [`Value`] tree instead of serde's visitor architecture. That is enough for
//! the JSON round-trips the pipeline performs (wrapper persistence, ground
//! truth dumps, annotation models) while staying a few hundred lines.
//!
//! Unsupported (fails at compile or expansion time, never silently):
//! generics on derived types, `#[serde(...)]` attributes, non-`String` map
//! keys, borrowed deserialization.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// A self-describing data tree: the intermediate form between Rust values
/// and any concrete format (JSON in this workspace).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key order is preserved; maps from `BTreeMap`/`HashMap` are emitted in
    /// sorted key order so output is deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error type shared by serialization and deserialization.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helpers used by generated derive code.
pub mod de {
    use super::{Error, Value};

    pub fn expect_map<'a>(v: &'a Value, what: &str) -> Result<&'a [(String, Value)], Error> {
        v.as_map()
            .ok_or_else(|| Error::msg(format!("expected map for {what}, found {}", v.kind())))
    }

    pub fn expect_seq<'a>(v: &'a Value, len: usize, what: &str) -> Result<&'a [Value], Error> {
        let s = v.as_seq().ok_or_else(|| {
            Error::msg(format!("expected sequence for {what}, found {}", v.kind()))
        })?;
        if s.len() != len {
            return Err(Error::msg(format!(
                "expected {len} elements for {what}, found {}",
                s.len()
            )));
        }
        Ok(s)
    }

    pub fn field<'a>(m: &'a [(String, Value)], name: &str, what: &str) -> Result<&'a Value, Error> {
        m.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::msg(format!("missing field `{name}` in {what}")))
    }

    /// Like [`field`], but absence is not an error — used by derive code
    /// for `#[serde(default)]` fields.
    pub fn field_opt<'a>(m: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
        m.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    pub fn unknown_variant(variant: &str, what: &str) -> Error {
        Error::msg(format!("unknown variant `{variant}` for {what}"))
    }

    pub fn invalid_value(what: &str) -> Error {
        Error::msg(format!("invalid value for {what}"))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {n} out of range"))),
                    _ => Err(Error::msg(format!("expected integer, found {}", v.kind()))),
                }
            }
        }
    )*};
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {n} out of range"))),
                    _ => Err(Error::msg(format!("expected integer, found {}", v.kind()))),
                }
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);
int_impls!(i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    _ => Err(Error::msg(format!("expected number, found {}", v.kind()))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg(format!("expected bool, found {}", v.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg(format!("expected string, found {}", v.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(Error::msg(format!("expected sequence, found {}", v.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(Error::msg(format!("expected sequence, found {}", v.kind()))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(Error::msg(format!("expected sequence, found {}", v.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::msg("expected map"))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::msg("expected map"))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let s = de::expect_seq(v, LEN, "tuple")?;
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&17u32.to_value()).unwrap(), 17);
        assert_eq!(i32::from_value(&(-4i32).to_value()).unwrap(), -4);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        let v = vec!["a".to_string(), "b".to_string()];
        assert_eq!(Vec::<String>::from_value(&v.to_value()).unwrap(), v);
        let t = (1.5f64, "x".to_string());
        assert_eq!(<(f64, String)>::from_value(&t.to_value()).unwrap(), t);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn map_order_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u8);
        m.insert("a".to_string(), 2u8);
        match m.to_value() {
            Value::Map(entries) => {
                assert_eq!(entries[0].0, "a");
                assert_eq!(entries[1].0, "b");
            }
            other => panic!("expected map, got {other:?}"),
        }
    }
}
