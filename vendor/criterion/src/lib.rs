//! Offline drop-in for the subset of `criterion` this workspace uses.
//!
//! The build environment cannot fetch crates, so this stub keeps the same
//! bench-authoring surface (`Criterion`, `benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`, `criterion_main!`)
//! but replaces the statistics machinery with a plain wall-clock loop: each
//! benchmark is warmed up once, timed for `sample_size` samples, and the
//! min / median / max per-iteration times are printed.

use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`. The return value is passed through
    /// [`black_box`] so the computation is not optimized away.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up, and an estimate of per-iteration cost to size the samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~10ms per sample, capped to keep slow benches bounded.
    let iters =
        (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort();
    println!(
        "{name}: min {:?}  median {:?}  max {:?}  ({sample_size} samples x {iters} iters)",
        samples[0],
        samples[samples.len() / 2],
        samples[samples.len() - 1],
    );
}

/// Re-export of `std::hint::black_box` under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
