//! Offline drop-in for the subset of `rand` this workspace uses.
//!
//! The build environment cannot fetch crates, so `StdRng` here is a local
//! xoshiro256++ (seeded through SplitMix64) rather than the upstream
//! ChaCha12. It is deterministic for a given seed on every platform, which
//! is the property the synthetic testbed actually relies on — but the
//! generated stream differs from upstream `rand`, so corpus-derived numbers
//! were re-baselined when this stub was introduced (see EXPERIMENTS.md).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker for random generators, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {}

impl<T: RngCore + ?Sized> Rng for T {}

/// Convenience sampling methods, blanket-implemented for every [`Rng`]
/// (matching the `rand 0.10` split that makes callers import both traits).
pub trait RngExt: Rng {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A 53-bit uniform draw in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard deterministic generator: xoshiro256++.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut st = seed;
        StdRng {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    pub use super::StdRng;
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded draw (Lemire, without the rejection step — the
/// bias is at most 2⁻⁶⁴·n, far below anything the synthetic corpus can
/// observe). `n` must be at most 2⁶⁴, which covers every integer range
/// width including full-domain inclusive ranges.
fn below(rng: &mut (impl RngCore + ?Sized), n: u128) -> u128 {
    debug_assert!(n > 0 && n <= 1 << 64);
    (rng.next_u64() as u128 * n) >> 64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + below(rng, width) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.random_range(4..=7);
            assert!((4..=7).contains(&v));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
            let f = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let n: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn bool_probabilities_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }
}
