//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored offline `serde` stub.
//!
//! The build environment has no crates.io access, so this macro is written
//! against `proc_macro` alone (no syn/quote). It supports exactly the item
//! shapes this workspace derives on:
//!
//! - structs with named fields
//! - tuple structs (newtype and n-ary)
//! - unit structs
//! - enums whose variants are unit, tuple, or named-field
//! - the `#[serde(...)]` attributes `default` (container- or field-level,
//!   Deserialize side) and `skip_serializing_if = "path"` (field-level,
//!   Serialize side)
//!
//! Generics, other `#[serde(...)]` attributes and non-`String` map keys
//! are not supported and fail loudly at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

type Toks = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// The subset of `#[serde(...)]` attributes the stub honors.
#[derive(Default)]
struct SerdeAttrs {
    /// `#[serde(default)]`: on a field, a missing map entry becomes the
    /// field type's `Default::default()`; on a struct, missing entries
    /// come from the *struct's* `Default` value (real serde semantics).
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: the field is omitted
    /// from the serialized map when `path(&self.field)` is true.
    skip_serializing_if: Option<String>,
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        attrs: SerdeAttrs,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consume leading outer attributes, folding any `#[serde(...)]` contents
/// into a [`SerdeAttrs`]. Non-serde attributes (doc comments, derives,
/// lints) are skipped.
fn take_attrs(toks: &mut Toks) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next();
        // `#` is followed by a bracketed group (outer attribute).
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                parse_serde_attr(g.stream(), &mut attrs);
            }
            other => panic!("serde_derive: malformed attribute near {other:?}"),
        }
    }
    attrs
}

/// If `stream` is the inside of a `#[serde(...)]` attribute, record the
/// supported items; unsupported serde items fail loudly (silently
/// dropping them would change wire formats).
fn parse_serde_attr(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let mut toks: Toks = stream.into_iter().peekable();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // some other attribute — ignore
    }
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("serde_derive: expected `(...)` after `serde`, found {other:?}"),
    };
    let mut items: Toks = body.into_iter().peekable();
    while let Some(tok) = items.next() {
        let key = match tok {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => continue,
            other => panic!("serde_derive: unexpected token in serde attribute: {other:?}"),
        };
        match key.as_str() {
            "default" => attrs.default = true,
            "skip_serializing_if" => {
                match items.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
                    other => panic!(
                        "serde_derive: expected `=` after skip_serializing_if, found {other:?}"
                    ),
                }
                let lit = match items.next() {
                    Some(TokenTree::Literal(l)) => l.to_string(),
                    other => panic!(
                        "serde_derive: expected string after skip_serializing_if, found {other:?}"
                    ),
                };
                attrs.skip_serializing_if = Some(lit.trim_matches('"').to_string());
            }
            other => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
    }
}

fn skip_vis(toks: &mut Toks) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            // `pub(crate)` etc.
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

fn expect_ident(toks: &mut Toks) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

fn reject_generics(toks: &mut Toks, name: &str) {
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the offline stub");
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Toks = input.into_iter().peekable();
    loop {
        let attrs = take_attrs(&mut toks);
        skip_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut toks);
                reject_generics(&mut toks, &name);
                let fields = match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => Fields::Unit,
                };
                return Item::Struct {
                    name,
                    attrs,
                    fields,
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut toks);
                reject_generics(&mut toks, &name);
                let body = match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                    other => panic!("serde_derive: expected enum body, found {other:?}"),
                };
                return Item::Enum {
                    name,
                    variants: parse_variants(body),
                };
            }
            Some(TokenTree::Ident(_)) => {} // e.g. `union` would fall through and fail later
            Some(_) => {}
            None => panic!("serde_derive: no struct or enum found in derive input"),
        }
    }
}

/// Field names of a `{ ... }` field list. Types are skipped with
/// angle-bracket tracking so commas inside `Vec<(String, Role)>` or
/// `BTreeMap<String, usize>` do not end a field early.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks: Toks = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        let attrs = take_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_vis(&mut toks);
        let name = expect_ident(&mut toks);
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        names.push(Field { name, attrs });
        // Skip the type until a comma at angle depth 0 (or end of list).
        let mut angle: i32 = 0;
        for tok in toks.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    names
}

/// Number of fields in a `( ... )` field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut segment_has_tokens = false;
    let mut angle: i32 = 0;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if segment_has_tokens {
                        count += 1;
                    }
                    segment_has_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks: Toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _ = take_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut toks);
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                toks.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Consume up to and including the trailing comma (discriminants are
        // not supported and would fail the ident expectation above anyway).
        for tok in toks.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn ser_named_body(fields: &[Field], accessor: &dyn Fn(&str) -> String) -> String {
    // Fields with `skip_serializing_if` need a conditional push, so the
    // map is built imperatively when any is present.
    if fields.iter().all(|f| f.attrs.skip_serializing_if.is_none()) {
        let mut s = String::from("::serde::Value::Map(::std::vec![");
        for f in fields {
            s.push_str(&format!(
                "(::std::string::String::from(\"{}\"), ::serde::Serialize::to_value({})),",
                f.name,
                accessor(&f.name)
            ));
        }
        s.push_str("])");
        return s;
    }
    let mut s = String::from(
        "{ let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
           ::std::vec::Vec::new();",
    );
    for f in fields {
        let push = format!(
            "__m.push((::std::string::String::from(\"{}\"), ::serde::Serialize::to_value({})));",
            f.name,
            accessor(&f.name)
        );
        match &f.attrs.skip_serializing_if {
            Some(pred) => s.push_str(&format!(
                "if !(({pred})({})) {{ {push} }}",
                accessor(&f.name)
            )),
            None => s.push_str(&push),
        }
    }
    s.push_str("::serde::Value::Map(__m) }");
    s
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields, .. } => {
            let body = match fields {
                Fields::Named(fs) => ser_named_body(fs, &|f| format!("&self.{f}")),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let mut s = String::from("::serde::Value::Seq(::std::vec![");
                    for i in 0..*n {
                        s.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
                    }
                    s.push_str("])");
                    s
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let mut s = String::from("::serde::Value::Seq(::std::vec![");
                            for b in &binds {
                                s.push_str(&format!("::serde::Serialize::to_value({b}),"));
                            }
                            s.push_str("])");
                            s
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                               (::std::string::String::from(\"{vn}\"), {inner})]),",
                            binds.join(",")
                        ));
                    }
                    Fields::Named(fs) => {
                        let inner = ser_named_body(fs, &|f| f.to_string());
                        let binds: Vec<&str> =
                            fs.iter().map(|f| f.name.as_str()).collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![\
                               (::std::string::String::from(\"{vn}\"), {inner})]),",
                            binds.join(",")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} \
                 }}"
            )
        }
    }
}

/// `container_default`: when `Some(binding)`, a missing map entry falls
/// back to that binding's field (container-level `#[serde(default)]`).
fn de_named_body(
    type_name: &str,
    path: &str,
    fields: &[Field],
    map_expr: &str,
    container_default: Option<&str>,
) -> String {
    let mut s = format!("{path} {{");
    for f in fields {
        let name = &f.name;
        let fallback = match (container_default, f.attrs.default) {
            (Some(binding), _) => Some(format!("{binding}.{name}")),
            (None, true) => Some("::std::default::Default::default()".to_string()),
            (None, false) => None,
        };
        match fallback {
            Some(fb) => s.push_str(&format!(
                "{name}: match ::serde::de::field_opt({map_expr}, \"{name}\") {{ \
                   ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?, \
                   ::std::option::Option::None => {fb}, \
                 }},"
            )),
            None => s.push_str(&format!(
                "{name}: ::serde::Deserialize::from_value(::serde::de::field({map_expr}, \"{name}\", \"{type_name}\")?)?,"
            )),
        }
    }
    s.push('}');
    s
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct {
            name,
            attrs,
            fields,
        } => match fields {
            Fields::Named(fs) => {
                let (prelude, container_default) = if attrs.default {
                    (
                        format!("let __default: {name} = ::std::default::Default::default();"),
                        Some("__default"),
                    )
                } else {
                    (String::new(), None)
                };
                let ctor = de_named_body(name, name, fs, "m", container_default);
                format!(
                    "let m = ::serde::de::expect_map(v, \"{name}\")?; \
                     {prelude} \
                     ::std::result::Result::Ok({ctor})"
                )
            }
            Fields::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Fields::Tuple(n) => {
                let mut args = String::new();
                for i in 0..*n {
                    args.push_str(&format!("::serde::Deserialize::from_value(&s[{i}])?,"));
                }
                format!(
                    "let s = ::serde::de::expect_seq(v, {n}, \"{name}\")?; \
                     ::std::result::Result::Ok({name}({args}))"
                )
            }
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
        },
        Item::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vn = &v.name;
                let label = format!("{name}::{vn}");
                match &v.fields {
                    Fields::Unit => str_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    Fields::Tuple(1) => map_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                           ::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let mut args = String::new();
                        for i in 0..*n {
                            args.push_str(&format!("::serde::Deserialize::from_value(&s[{i}])?,"));
                        }
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                               let s = ::serde::de::expect_seq(inner, {n}, \"{label}\")?; \
                               ::std::result::Result::Ok({name}::{vn}({args})) }}"
                        ));
                    }
                    Fields::Named(fs) => {
                        let ctor = de_named_body(&label, &format!("{name}::{vn}"), fs, "mm", None);
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                               let mm = ::serde::de::expect_map(inner, \"{label}\")?; \
                               ::std::result::Result::Ok({ctor}) }}"
                        ));
                    }
                }
            }
            format!(
                "match v {{ \
                   ::serde::Value::Str(s) => match s.as_str() {{ \
                     {str_arms} \
                     other => ::std::result::Result::Err(::serde::de::unknown_variant(other, \"{name}\")), \
                   }}, \
                   ::serde::Value::Map(m) if m.len() == 1 => {{ \
                     let k = &m[0].0; \
                     let inner = &m[0].1; \
                     let _ = inner; \
                     match k.as_str() {{ \
                       {map_arms} \
                       other => ::std::result::Result::Err(::serde::de::unknown_variant(other, \"{name}\")), \
                     }} \
                   }} \
                   _ => ::std::result::Result::Err(::serde::de::invalid_value(\"{name}\")), \
                 }}"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
