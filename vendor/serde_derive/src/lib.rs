//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored offline `serde` stub.
//!
//! The build environment has no crates.io access, so this macro is written
//! against `proc_macro` alone (no syn/quote). It supports exactly the item
//! shapes this workspace derives on:
//!
//! - structs with named fields
//! - tuple structs (newtype and n-ary)
//! - unit structs
//! - enums whose variants are unit, tuple, or named-field
//!
//! Generics, `#[serde(...)]` attributes and non-`String` map keys are not
//! supported and fail loudly at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

type Toks = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn skip_attrs(toks: &mut Toks) {
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next();
        // `#` is followed by a bracketed group (outer attribute).
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde_derive: malformed attribute near {other:?}"),
        }
    }
}

fn skip_vis(toks: &mut Toks) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            // `pub(crate)` etc.
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

fn expect_ident(toks: &mut Toks) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

fn reject_generics(toks: &mut Toks, name: &str) {
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the offline stub");
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Toks = input.into_iter().peekable();
    loop {
        skip_attrs(&mut toks);
        skip_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut toks);
                reject_generics(&mut toks, &name);
                let fields = match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => Fields::Unit,
                };
                return Item::Struct { name, fields };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut toks);
                reject_generics(&mut toks, &name);
                let body = match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                    other => panic!("serde_derive: expected enum body, found {other:?}"),
                };
                return Item::Enum {
                    name,
                    variants: parse_variants(body),
                };
            }
            Some(TokenTree::Ident(_)) => {} // e.g. `union` would fall through and fail later
            Some(_) => {}
            None => panic!("serde_derive: no struct or enum found in derive input"),
        }
    }
}

/// Field names of a `{ ... }` field list. Types are skipped with
/// angle-bracket tracking so commas inside `Vec<(String, Role)>` or
/// `BTreeMap<String, usize>` do not end a field early.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut toks: Toks = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_vis(&mut toks);
        let name = expect_ident(&mut toks);
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        names.push(name);
        // Skip the type until a comma at angle depth 0 (or end of list).
        let mut angle: i32 = 0;
        for tok in toks.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    names
}

/// Number of fields in a `( ... )` field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut segment_has_tokens = false;
    let mut angle: i32 = 0;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if segment_has_tokens {
                        count += 1;
                    }
                    segment_has_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks: Toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut toks);
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                toks.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Consume up to and including the trailing comma (discriminants are
        // not supported and would fail the ident expectation above anyway).
        for tok in toks.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn ser_named_body(fields: &[String], accessor: &dyn Fn(&str) -> String) -> String {
    let mut s = String::from("::serde::Value::Map(::std::vec![");
    for f in fields {
        s.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({})),",
            accessor(f)
        ));
    }
    s.push_str("])");
    s
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => ser_named_body(fs, &|f| format!("&self.{f}")),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let mut s = String::from("::serde::Value::Seq(::std::vec![");
                    for i in 0..*n {
                        s.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
                    }
                    s.push_str("])");
                    s
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let mut s = String::from("::serde::Value::Seq(::std::vec![");
                            for b in &binds {
                                s.push_str(&format!("::serde::Serialize::to_value({b}),"));
                            }
                            s.push_str("])");
                            s
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                               (::std::string::String::from(\"{vn}\"), {inner})]),",
                            binds.join(",")
                        ));
                    }
                    Fields::Named(fs) => {
                        let inner = ser_named_body(fs, &|f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![\
                               (::std::string::String::from(\"{vn}\"), {inner})]),",
                            fs.join(",")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} \
                 }}"
            )
        }
    }
}

fn de_named_body(type_name: &str, path: &str, fields: &[String], map_expr: &str) -> String {
    let mut s = format!("{path} {{");
    for f in fields {
        s.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::de::field({map_expr}, \"{f}\", \"{type_name}\")?)?,"
        ));
    }
    s.push('}');
    s
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Named(fs) => {
                let ctor = de_named_body(name, name, fs, "m");
                format!(
                    "let m = ::serde::de::expect_map(v, \"{name}\")?; \
                     ::std::result::Result::Ok({ctor})"
                )
            }
            Fields::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Fields::Tuple(n) => {
                let mut args = String::new();
                for i in 0..*n {
                    args.push_str(&format!("::serde::Deserialize::from_value(&s[{i}])?,"));
                }
                format!(
                    "let s = ::serde::de::expect_seq(v, {n}, \"{name}\")?; \
                     ::std::result::Result::Ok({name}({args}))"
                )
            }
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
        },
        Item::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vn = &v.name;
                let label = format!("{name}::{vn}");
                match &v.fields {
                    Fields::Unit => str_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    Fields::Tuple(1) => map_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                           ::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let mut args = String::new();
                        for i in 0..*n {
                            args.push_str(&format!("::serde::Deserialize::from_value(&s[{i}])?,"));
                        }
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                               let s = ::serde::de::expect_seq(inner, {n}, \"{label}\")?; \
                               ::std::result::Result::Ok({name}::{vn}({args})) }}"
                        ));
                    }
                    Fields::Named(fs) => {
                        let ctor = de_named_body(&label, &format!("{name}::{vn}"), fs, "mm");
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                               let mm = ::serde::de::expect_map(inner, \"{label}\")?; \
                               ::std::result::Result::Ok({ctor}) }}"
                        ));
                    }
                }
            }
            format!(
                "match v {{ \
                   ::serde::Value::Str(s) => match s.as_str() {{ \
                     {str_arms} \
                     other => ::std::result::Result::Err(::serde::de::unknown_variant(other, \"{name}\")), \
                   }}, \
                   ::serde::Value::Map(m) if m.len() == 1 => {{ \
                     let k = &m[0].0; \
                     let inner = &m[0].1; \
                     let _ = inner; \
                     match k.as_str() {{ \
                       {map_arms} \
                       other => ::std::result::Result::Err(::serde::de::unknown_variant(other, \"{name}\")), \
                     }} \
                   }} \
                   _ => ::std::result::Result::Err(::serde::de::invalid_value(\"{name}\")), \
                 }}"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
