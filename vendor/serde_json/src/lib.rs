//! Offline drop-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`], bridging JSON text
//! and the vendored `serde` stub's [`Value`] tree.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // Rust's f64 Display is the shortest representation that parses
            // back to the same value, and never uses exponent notation —
            // both properties keep round-trips exact.
            let s = x.to_string();
            out.push_str(&s);
            // Ensure the token stays a float on re-parse.
            if !s.contains('.') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at offset {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unexpected end of input in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::Int(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = Value::Map(vec![
            (
                "a".to_string(),
                Value::Seq(vec![Value::UInt(1), Value::Int(-2)]),
            ),
            ("b".to_string(), Value::Str("x \"y\"\nz".to_string())),
            ("c".to_string(), Value::Float(0.25)),
            ("d".to_string(), Value::Bool(true)),
            ("e".to_string(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_stays_float() {
        let s = to_string(&Value::Float(3.0)).unwrap();
        assert_eq!(s, "3.0");
        assert_eq!(from_str::<Value>(&s).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""aA😀b""#).unwrap();
        assert_eq!(v, Value::Str("aA\u{1F600}b".to_string()));
    }
}
