//! Strategy trait and combinators for the vendored proptest stub.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values. Object-safe so `prop_oneof!` can mix
/// differently-typed strategies behind `Box<dyn Strategy<Value = V>>`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<R, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        R: Strategy,
        F: Fn(Self::Value) -> R,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always the same value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, R, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    R: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R::Value;
    fn generate(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (the engine behind `prop_oneof!`).
pub struct Union<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        match (hi - lo).checked_add(1) {
            Some(width) => lo + rng.below(width),
            // Full-domain range: every u64 is valid.
            None => rng.next_u64(),
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($idx:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// `&str` as a strategy: a simplified pattern language of literal characters
/// and `[...]{m,n}` / `[...]{m}` character classes, matching how the test
/// suite uses proptest's regex strategies (e.g. `"[a-z ]{0,12}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let class: Vec<char>;
        if chars[i] == '[' {
            let (cls, next) = parse_class(pattern, &chars, i + 1);
            class = cls;
            i = next;
        } else {
            class = vec![chars[i]];
            i += 1;
        }
        let (min, max, next) = parse_quantifier(pattern, &chars, i);
        i = next;
        let n = min + rng.below((max - min) as u64 + 1) as usize;
        for _ in 0..n {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

/// Parse a character class body starting just after `[`; returns the class
/// alphabet and the index just past `]`.
fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut class = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        // `a-z` range (a trailing `-` is a literal).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "invalid range in pattern `{pattern}`");
            for c in lo..=hi {
                class.push(c);
            }
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    assert!(
        i < chars.len() && !class.is_empty(),
        "unsupported pattern `{pattern}` (expected non-empty `[...]` class)"
    );
    (class, i + 1)
}

/// Parse an optional `{m,n}` / `{m}` quantifier at `i`; returns
/// `(min, max, next_index)`. Without a quantifier the atom appears once.
fn parse_quantifier(pattern: &str, chars: &[char], i: usize) -> (usize, usize, usize) {
    if i >= chars.len() || chars[i] != '{' {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .unwrap_or_else(|| panic!("unterminated quantifier in pattern `{pattern}`"))
        + i;
    let body: String = chars[i + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("bad quantifier"),
            hi.trim().parse().expect("bad quantifier"),
        ),
        None => {
            let n: usize = body.trim().parse().expect("bad quantifier");
            (n, n)
        }
    };
    assert!(min <= max, "empty quantifier in pattern `{pattern}`");
    (min, max, close + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    #[test]
    fn pattern_respects_class_and_length() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..500 {
            let s = "[a-c ]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "bad length: {s:?}");
            assert!(
                s.chars().all(|c| matches!(c, 'a'..='c' | ' ')),
                "bad char: {s:?}"
            );
        }
    }

    #[test]
    fn literal_and_fixed_quantifier() {
        let mut rng = TestRng::for_test("lit");
        let s = "x[0-1]{3}y".generate(&mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with('x') && s.ends_with('y'));
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_test("combo");
        let strat = (1usize..4, 0usize..3)
            .prop_flat_map(|(n, m)| collection::vec(collection::vec(0.0f64..1.0, m), n));
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            for row in &v {
                assert!(row.len() < 3);
                assert!(row.iter().all(|x| (0.0..1.0).contains(x)));
            }
        }
    }

    #[test]
    fn union_covers_choices() {
        let mut rng = TestRng::for_test("union");
        let u = Union::new(vec![
            boxed(Just("a".to_string())),
            boxed(Just("b".to_string())),
        ]);
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..100 {
            match u.generate(&mut rng).as_str() {
                "a" => seen_a = true,
                "b" => seen_b = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen_a && seen_b);
    }
}
