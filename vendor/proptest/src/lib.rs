//! Offline drop-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot fetch crates, so this stub reimplements the
//! strategy combinators the test suite relies on: integer/float ranges,
//! `Just`, simple `[class]{m,n}` string patterns, `collection::vec`,
//! tuples, `prop_map` / `prop_flat_map`, `prop_oneof!`, `any::<T>()`, and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, by design:
//! - no shrinking — a failing case reports its inputs (via the assertion
//!   message) but is not minimized;
//! - deterministic seeding derived from the test function name, so runs are
//!   reproducible on every platform;
//! - string strategies support only concatenations of literal characters
//!   and `[...]{m,n}` character classes (the only forms used here).

pub mod strategy;

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// A failed property; produced by `prop_assert!` and friends.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic xoshiro256++ used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> TestRng {
            let mut st = seed;
            TestRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }

        /// Seed derived from the test name (FNV-1a), so each test gets an
        /// independent but reproducible stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng::seed_from_u64(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` — a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// `any::<T>()` — the canonical strategy for the whole domain of `T`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    pub struct AnyInt<T>(std::marker::PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyInt<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;
                fn arbitrary() -> AnyInt<$t> {
                    AnyInt(std::marker::PhantomData)
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// `proptest! { ... }` — each contained test function runs `cases` times
/// with inputs drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property failed on case {case}: {e}");
                }
            }
        }
    )*};
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current property case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), lhs, rhs
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), lhs, rhs
                ),
            ));
        }
    }};
}

/// Fail the current property case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
