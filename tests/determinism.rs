//! Engine-equivalence guarantee: the memoized bounded distance engine and
//! the thread pool are pure performance features. Extraction output must be
//! byte-identical across thread counts and with the distance cache on or
//! off — the optimized engine is only allowed to skip work whose result is
//! provably unused, never to change a result.

use mse::core::{DistanceCache, Extraction, Mse, MseConfig, SectionWrapperSet};
use mse::testbed::EngineSpec;

/// Build wrappers and extract a page batch under one configuration,
/// returning the extractions serialized to JSON for byte comparison.
fn run(threads: usize, cache_enabled: bool) -> String {
    let mut out = Vec::new();
    for engine_id in 0..2 {
        let engine = EngineSpec::generate(2006, engine_id);
        let samples: Vec<_> = (0..5).map(|q| engine.page(q)).collect();
        let refs: Vec<(&str, Option<&str>)> = samples
            .iter()
            .map(|p| (p.html.as_str(), Some(p.query.as_str())))
            .collect();
        let cfg = MseConfig {
            threads,
            enable_distance_cache: cache_enabled,
            ..MseConfig::default()
        };
        let cache = DistanceCache::new(cache_enabled);
        let ws: SectionWrapperSet = Mse::new(cfg)
            .build_with_queries_cached(&refs, &cache)
            .expect("wrapper build");

        let pages: Vec<_> = (0..8).map(|q| engine.page(q)).collect();
        let page_refs: Vec<(&str, Option<&str>)> = pages
            .iter()
            .map(|p| (p.html.as_str(), Some(p.query.as_str())))
            .collect();
        let exs: Vec<Extraction> = ws.extract_batch_cached(&page_refs, &cache);
        out.push(exs);
    }
    serde_json::to_string(&out).expect("serialize extractions")
}

#[test]
fn extraction_identical_across_thread_counts() {
    let serial = run(1, true);
    let parallel = run(4, true);
    assert_eq!(
        serial, parallel,
        "extraction must be byte-identical for threads=1 vs threads=4"
    );
}

#[test]
fn extraction_identical_with_and_without_distance_cache() {
    let reference = run(1, false);
    let memoized = run(1, true);
    assert_eq!(
        reference, memoized,
        "memoized bounded engine must match the reference engine byte-for-byte"
    );
}

#[test]
fn extraction_identical_tuned_vs_reference() {
    // The two corners compared by `perf_report`: serial/no-cache vs
    // all-cores/cached.
    let baseline = run(1, false);
    let tuned = run(0, true);
    assert_eq!(
        baseline, tuned,
        "tuned engine (threads=0, cache on) must match the serial reference"
    );
}
