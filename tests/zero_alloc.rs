//! The "0 allocs/page" serving invariant, asserted as a test instead of
//! only as a bench-time probe.
//!
//! Registers [`mse_bench::alloc::CountingAlloc`] as this test binary's
//! global allocator and drives the compiled match path
//! ([`match_page_scratch`]) over testbed pages with a warmed scratch
//! arena. The counters are process-global, so this file deliberately
//! holds a **single** `#[test]`: a sibling test allocating concurrently
//! would charge its allocations to the measured window.
//!
//! [`match_page_scratch`]: mse_core::CompiledWrapperSet::match_page_scratch

use mse_bench::alloc::{counting, CountingAlloc};
use mse_core::{DistanceCache, ExtractScratch, Mse, MseConfig, Page};
use mse_testbed::EngineSpec;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn compiled_match_path_is_allocation_free() {
    let seed = 2006;
    let engine = EngineSpec::generate(seed, 0);
    let samples: Vec<_> = (0..8).map(|q| engine.page(q)).collect();
    let refs: Vec<(&str, Option<&str>)> = samples
        .iter()
        .map(|p| (p.html.as_str(), Some(p.query.as_str())))
        .collect();
    let ws = Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .expect("testbed engine 0 must build");

    // Families are stripped for the probe: the family Dinr check builds
    // tag forests, which allocate by design (serve.rs measures the same
    // wrapper-only configuration).
    let mut wrapper_only = ws.clone();
    wrapper_only.families.clear();
    wrapper_only.absorbed.clear();
    let compiled = wrapper_only.compile();

    let pages: Vec<Page> = (0..12)
        .map(|q| {
            let p = engine.page(q);
            Page::from_html(&p.html, Some(&p.query))
        })
        .collect();
    let cache = DistanceCache::disabled();
    let mut scratch = ExtractScratch::new();

    // Warm-up: grow the scratch arena and the interner to steady state.
    let mut warm_sections = 0usize;
    for page in &pages {
        let (s, _r) = compiled.match_page_scratch(page, &cache, &mut scratch);
        warm_sections += s;
    }
    assert!(
        warm_sections > 0,
        "probe is vacuous: no page matched any wrapper"
    );

    // Steady state: zero heap allocation across the whole batch.
    let (matched, allocs, bytes) = counting(|| {
        let mut total = 0usize;
        for page in &pages {
            let (s, r) = compiled.match_page_scratch(page, &cache, &mut scratch);
            total += s + r;
        }
        total
    });
    assert!(matched > 0);
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "compiled match path allocated {allocs} time(s) / {bytes} byte(s) \
         per {} warmed pages",
        pages.len()
    );
}
