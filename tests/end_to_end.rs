//! Cross-crate integration: generate a corpus, learn wrappers, extract,
//! and score — the full §6 protocol on a reduced corpus, with quality
//! floors that fail loudly if the pipeline regresses.

use mse::core::{Mse, MseConfig};
use mse::eval::{run_corpus, score_engine};
use mse::testbed::{Corpus, CorpusConfig};

#[test]
fn small_corpus_quality_floor() {
    let corpus = Corpus::generate(CorpusConfig::small(2006));
    let cfg = MseConfig::default();
    let score = run_corpus(&corpus, &cfg, 4);
    let (_, _, total) = score.all();
    // Floors sit well below observed values (recall ~0.77+, precision
    // ~0.9+ on this 12-engine corpus, which includes paired-div and
    // rare-schema engines) and exist to catch regressions.
    assert!(
        total.sections.recall_total() > 0.65,
        "section recall collapsed: {total:?}"
    );
    assert!(
        total.sections.precision_total() > 0.80,
        "section precision collapsed: {total:?}"
    );
    assert!(
        total.records.recall() > 0.90,
        "record recall collapsed: {total:?}"
    );
}

#[test]
fn wrapper_build_is_deterministic() {
    let corpus = Corpus::generate(CorpusConfig::small(5));
    let engine = &corpus.engines[0];
    let samples: Vec<(String, String)> = corpus
        .sample_pages(engine)
        .into_iter()
        .map(|p| (p.html, p.query))
        .collect();
    let refs: Vec<(&str, Option<&str>)> = samples
        .iter()
        .map(|(h, q)| (h.as_str(), Some(q.as_str())))
        .collect();
    let a = Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .unwrap();
    let b = Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .unwrap();
    let page = engine.page(9);
    assert_eq!(
        a.extract_with_query(&page.html, Some(&page.query)),
        b.extract_with_query(&page.html, Some(&page.query)),
    );
}

#[test]
fn wrapper_set_round_trips_through_json() {
    let corpus = Corpus::generate(CorpusConfig::small(5));
    let engine = &corpus.engines[1];
    let samples: Vec<(String, String)> = corpus
        .sample_pages(engine)
        .into_iter()
        .map(|p| (p.html, p.query))
        .collect();
    let refs: Vec<(&str, Option<&str>)> = samples
        .iter()
        .map(|(h, q)| (h.as_str(), Some(q.as_str())))
        .collect();
    let ws = Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .unwrap();
    let json = serde_json::to_string(&ws).unwrap();
    let back: mse::core::SectionWrapperSet = serde_json::from_str(&json).unwrap();
    for q in 5..10 {
        let page = engine.page(q);
        assert_eq!(
            ws.extract_with_query(&page.html, Some(&page.query)),
            back.extract_with_query(&page.html, Some(&page.query)),
            "page {q} extraction differs after serde round-trip"
        );
    }
}

#[test]
fn sample_vs_test_split_is_respected() {
    // Scoring must attribute 5 pages to each split.
    let corpus = Corpus::generate(CorpusConfig::small(8));
    let cfg = MseConfig::default();
    let engine = &corpus.engines[5];
    let outcome = score_engine(&corpus, engine, &cfg);
    let s = outcome.score.sample.sections;
    let t = outcome.score.test.sections;
    let gt_sample: usize = corpus
        .sample_pages(engine)
        .iter()
        .map(|p| p.truth.sections.len())
        .sum();
    let gt_test: usize = corpus
        .test_pages(engine)
        .iter()
        .map(|p| p.truth.sections.len())
        .sum();
    assert_eq!(s.actual, gt_sample);
    assert_eq!(t.actual, gt_test);
}

#[test]
fn extraction_preserves_document_order_and_disjointness() {
    let corpus = Corpus::generate(CorpusConfig::small(12));
    let cfg = MseConfig::default();
    for engine in corpus.engines.iter().take(4) {
        let samples: Vec<(String, String)> = corpus
            .sample_pages(engine)
            .into_iter()
            .map(|p| (p.html, p.query))
            .collect();
        let refs: Vec<(&str, Option<&str>)> = samples
            .iter()
            .map(|(h, q)| (h.as_str(), Some(q.as_str())))
            .collect();
        let Ok(ws) = Mse::new(cfg.clone()).build_with_queries(&refs) else {
            continue;
        };
        for q in 0..10 {
            let page = engine.page(q);
            let ex = ws.extract_with_query(&page.html, Some(&page.query));
            let mut cursor = 0usize;
            for sec in &ex.sections {
                assert!(sec.start >= cursor, "sections overlap or out of order");
                assert!(sec.start < sec.end);
                cursor = sec.end;
                let mut rcursor = sec.start;
                for r in &sec.records {
                    assert!(
                        r.start >= rcursor && r.end <= sec.end,
                        "record outside section"
                    );
                    rcursor = r.end;
                }
            }
        }
    }
}
