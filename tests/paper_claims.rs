//! The paper's headline capability claims, pinned as executable tests.

use mse::baselines::{mdr_extract, MdrConfig};
use mse::core::{Mse, MseConfig, SchemaId};
use mse::eval::score_page;
use mse::testbed::{Corpus, CorpusConfig};

/// Build a wrapper set for an engine from its sample split.
fn build(corpus: &Corpus, id: usize) -> Option<mse::core::SectionWrapperSet> {
    let engine = &corpus.engines[id];
    let samples: Vec<(String, String)> = corpus
        .sample_pages(engine)
        .into_iter()
        .map(|p| (p.html, p.query))
        .collect();
    let refs: Vec<(&str, Option<&str>)> = samples
        .iter()
        .map(|(h, q)| (h.as_str(), Some(q.as_str())))
        .collect();
    Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .ok()
}

/// §1: "Our record extraction method has no constraint on the minimum
/// number of SRRs that must be in a section" — one-record sections must be
/// extractable (prior work required ≥ 2).
#[test]
fn single_record_sections_are_extracted() {
    let corpus = Corpus::generate(CorpusConfig::default());
    let mut checked = 0usize;
    let mut hit = 0usize;
    for engine in corpus.engines.iter().filter(|e| e.multi).take(12) {
        let Some(ws) = build(&corpus, engine.id) else {
            continue;
        };
        for q in 0..10 {
            let page = engine.page(q);
            let singles: Vec<&str> = page
                .truth
                .sections
                .iter()
                .filter(|s| s.records.len() == 1)
                .map(|s| s.schema.as_str())
                .collect();
            if singles.is_empty() {
                continue;
            }
            let ex = ws.extract_with_query(&page.html, Some(&page.query));
            for gt in page.truth.sections.iter().filter(|s| s.records.len() == 1) {
                checked += 1;
                let key = gt.records[0].key();
                if ex
                    .sections
                    .iter()
                    .any(|s| s.records.len() == 1 && s.records[0].lines.join("\n") == key)
                {
                    hit += 1;
                }
            }
        }
    }
    assert!(
        checked >= 10,
        "test bed produced too few 1-record sections ({checked})"
    );
    assert!(
        hit * 3 >= checked * 2,
        "single-record extraction too weak: {hit}/{checked}"
    );
}

/// §5.8: hidden sections — schemas with no (or one) sample-page instance
/// are recovered through section families on test pages.
#[test]
fn some_hidden_sections_recovered_via_families() {
    let corpus = Corpus::generate(CorpusConfig::default());
    let mut family_hits = 0usize;
    for engine in corpus.engines.iter().filter(|e| e.multi) {
        let sample_pages = corpus.sample_pages(engine);
        let seen: Vec<&str> = sample_pages
            .iter()
            .flat_map(|p| p.truth.sections.iter().map(|s| s.schema.as_str()))
            .collect();
        let hidden: Vec<&str> = engine
            .sections
            .iter()
            .map(|s| s.name.as_str())
            .filter(|n| seen.iter().filter(|x| x == &n).count() <= 1)
            .collect();
        if hidden.is_empty() {
            continue;
        }
        let Some(ws) = build(&corpus, engine.id) else {
            continue;
        };
        for page in corpus.test_pages(engine) {
            let ex = ws.extract_with_query(&page.html, Some(&page.query));
            for gt in page
                .truth
                .sections
                .iter()
                .filter(|s| hidden.contains(&s.schema.as_str()))
            {
                let keys: Vec<String> = gt.records.iter().map(|r| r.key()).collect();
                if ex.sections.iter().any(|s| {
                    matches!(s.schema, SchemaId::Family(_))
                        && s.records
                            .iter()
                            .filter(|r| keys.contains(&r.lines.join("\n")))
                            .count()
                            * 2
                            > keys.len()
                }) {
                    family_hits += 1;
                }
            }
        }
    }
    assert!(
        family_hits >= 3,
        "families recovered only {family_hits} hidden sections"
    );
}

/// §5.3 Case 5: static repeating content (navigation link lists) must not
/// be extracted as sections.
#[test]
fn static_nav_not_extracted() {
    let corpus = Corpus::generate(CorpusConfig::default());
    for engine in corpus.engines.iter().filter(|e| e.nav_trap).take(10) {
        let Some(ws) = build(&corpus, engine.id) else {
            continue;
        };
        let page = engine.page(7);
        let ex = ws.extract_with_query(&page.html, Some(&page.query));
        for sec in &ex.sections {
            for rec in &sec.records {
                for label in &engine.nav_labels {
                    assert!(
                        !rec.lines.iter().any(|l| l == label),
                        "nav label {label:?} leaked into extraction of engine {}",
                        engine.id
                    );
                }
            }
        }
    }
}

/// §7: MSE beats MDR on section precision by a wide margin (MDR emits
/// static repeating regions and cannot tell sections apart).
#[test]
fn mse_beats_mdr_on_precision() {
    let corpus = Corpus::generate(CorpusConfig::small(2006));
    let _cfg = MseConfig::default();
    let mdr_cfg = MdrConfig::default();
    let mut mse_score = mse::eval::PageScore::default();
    let mut mdr_score = mse::eval::PageScore::default();
    for engine in &corpus.engines {
        let ws = build(&corpus, engine.id);
        for q in 0..10 {
            let page = engine.page(q);
            if let Some(ws) = &ws {
                mse_score.add(&score_page(
                    &page.truth,
                    &ws.extract_with_query(&page.html, Some(&page.query)),
                ));
            }
            mdr_score.add(&score_page(&page.truth, &mdr_extract(&page.html, &mdr_cfg)));
        }
    }
    let mse_p = mse_score.sections.precision_total();
    let mdr_p = mdr_score.sections.precision_total();
    assert!(
        mse_p > mdr_p + 0.2,
        "expected MSE ≫ MDR on precision, got {mse_p:.2} vs {mdr_p:.2}"
    );
}

/// §2: the corpus reproduces the survey statistic that ~97% of sections
/// carry an explicit boundary marker.
#[test]
fn corpus_sbm_statistic() {
    let corpus = Corpus::generate(CorpusConfig::default());
    let f = corpus.stats().sbm_fraction();
    assert!(
        (0.93..=1.0).contains(&f),
        "SBM fraction {f} off the paper's 96.9%"
    );
}
