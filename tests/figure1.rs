//! The paper's Figure 1 — "Part of a sample result page with multiple
//! sections from healthcentral.com" — rebuilt as HTML and run through the
//! pipeline. The page has four dynamic sections of different sizes
//! (Encyclopedia ×5, Dr. Dean Edell ×1, News ×5, Peoples Pharmacy ×2),
//! bold section headers as LBMs, "Click Here for More" RBMs on the large
//! sections, and a semi-dynamic "Your search returned N matches." line —
//! the exact constellation the paper opens with.

use mse::core::{Mse, MseConfig};

/// One record in the Figure-1 style: numbered title link, date in the
/// title, optional description line.
fn record(n: usize, title: &str, tag: &str, date: &str, desc: Option<&str>) -> String {
    let mut html = format!(
        "<tr><td width=\"24\">{n}.</td><td><a href=\"/item/{tag}/{n}\">{title} --{tag}-- ({date})</a>"
    );
    if let Some(d) = desc {
        html.push_str(&format!("<br><font size=\"-1\">{d}</font>"));
    }
    html.push_str("</td></tr>");
    html
}

fn section(name: &str, records: &[String], more: bool) -> String {
    let mut html = format!("<p><b>{name}</b></p><table width=\"95%\">");
    for r in records {
        html.push_str(r);
    }
    html.push_str("</table>");
    if more {
        html.push_str("<p><a href=\"/more\">Click Here for More</a></p>");
    }
    html
}

/// Build a Figure-1-shaped page for one "query".
fn figure1_page(query: &str, matches: usize, seed: usize) -> String {
    let titles = [
        "Knee Injury",
        "Ultrasound in Obstetrics",
        "Lupus and Pregnancy",
        "Colic",
        "Lymphoma",
        "We Are Still Too Fat, Again",
        "AMA Guides Doctors on Older Drivers",
        "Mental Illness Strikes Babies, Too",
        "Eating Pyramid Style",
        "Guided Lasers Help Treat Uterine Fibroids",
        "Panel: Cut Salt, Let Thirst Be Water Guide",
        "Antidepressant Can Raise Cholesterol",
        "Another Fish Oil Tale Of Gray Hair Gone",
        "Migraine Watch",
        "Sleep and Memory",
        "Allergy Season Arrives",
        "Vitamin D Update",
    ];
    // Titles are query-specific, as on a real result page — identical
    // titles recurring across sample pages would (correctly) be treated as
    // template content by DSE.
    let t = |i: usize| format!("{} on {query}", titles[(seed * 3 + i) % titles.len()]);
    let d = |i: usize| format!("notes about {query} number {}", i + seed);

    let enc: Vec<String> = (0..5)
        .map(|i| {
            record(
                i + 1,
                &t(i),
                "Encyclopedia",
                "4/10/2002 1:07:00 PM",
                Some(&d(i)),
            )
        })
        .collect();
    let dean: Vec<String> = vec![record(1, &t(5), "Dr. Dean", "3/9/2004", None)];
    let news: Vec<String> = (0..5)
        .map(|i| {
            let desc = d(6 + i);
            let desc = if i % 2 == 1 {
                Some(desc.as_str())
            } else {
                None
            };
            record(i + 1, &t(6 + i), "News", "7/30/2003", desc)
        })
        .collect();
    let pharm: Vec<String> = (0..2)
        .map(|i| record(i + 1, &t(11 + i), "People's Pharmacy", "12/1/2003", None))
        .collect();

    format!(
        "<html><head><title>HealthCentral search</title></head><body>\
         <h1>HealthCentral</h1>\
         <form action=\"/search\"><input type=text name=q value=\"{query}\"><input type=submit value=Search></form>\
         <p>Your search returned {matches} matches.</p>\
         {}{}{}{}\
         <hr><p>Copyright 2004 HealthCentral</p></body></html>",
        section("Encyclopedia", &enc, true),
        section("Dr. Dean Edell", &dean, false),
        section("News", &news, true),
        section("Peoples Pharmacy", &pharm, false),
    )
}

#[test]
fn figure1_sections_and_records_extracted() {
    let samples = [
        (figure1_page("knee injury", 578, 0), "knee injury"),
        (figure1_page("lupus", 89, 1), "lupus"),
        (figure1_page("colic", 231, 2), "colic"),
    ];
    let refs: Vec<(&str, Option<&str>)> = samples
        .iter()
        .map(|(h, q)| (h.as_str(), Some(*q)))
        .collect();
    let ws = Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .expect("wrapper construction on the Figure 1 layout");

    // An unseen page.
    let page = figure1_page("migraine", 42, 4);
    let ex = ws.extract_with_query(&page, Some("migraine"));

    assert_eq!(
        ex.sections.len(),
        4,
        "Figure 1 has four dynamic sections; got {:?}",
        ex.sections
            .iter()
            .map(|s| (s.schema, s.records.len()))
            .collect::<Vec<_>>()
    );
    let counts: Vec<usize> = ex.sections.iter().map(|s| s.records.len()).collect();
    assert_eq!(
        counts,
        vec![5, 1, 5, 2],
        "Encyclopedia/Dean/News/Pharmacy record counts"
    );

    // The section-record relationship: Dr. Dean Edell's single record is
    // its own section (the ≥2-record limitation of prior work is the
    // paper's headline fix).
    let dean = &ex.sections[1];
    assert_eq!(dean.records.len(), 1);
    assert!(
        dean.records[0].lines.join(" ").contains("--Dr. Dean--"),
        "{:?}",
        dean.records[0].lines
    );

    // No chrome leaked into any record.
    for sec in &ex.sections {
        for rec in &sec.records {
            let text = rec.lines.join(" ");
            assert!(!text.contains("Copyright"), "footer leaked: {text}");
            assert!(
                !text.contains("Your search returned"),
                "info line leaked: {text}"
            );
            assert!(!text.contains("Click Here"), "RBM leaked: {text}");
        }
    }
}

#[test]
fn figure1_sections_have_all_same_tag_structure() {
    // The paper's §2 point about this page: "all sections on this page
    // have exactly the same tag structures — without considering the SBMs,
    // correctly extracting these sections would be very difficult". Verify
    // our extraction is indeed SBM-driven by checking the four wrappers
    // learned distinct boundary-marker texts.
    let samples = [
        (figure1_page("knee injury", 578, 0), "knee injury"),
        (figure1_page("lupus", 89, 1), "lupus"),
    ];
    let refs: Vec<(&str, Option<&str>)> = samples
        .iter()
        .map(|(h, q)| (h.as_str(), Some(*q)))
        .collect();
    let ws = Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .expect("build");
    let mut lbms: Vec<String> = ws
        .wrappers
        .iter()
        .flat_map(|w| w.lbms.iter().cloned())
        .collect();
    lbms.sort();
    lbms.dedup();
    for expected in ["Encyclopedia", "Dr. Dean Edell", "News", "Peoples Pharmacy"] {
        assert!(
            lbms.iter().any(|l| l == expected),
            "missing LBM {expected:?} in {lbms:?}"
        );
    }
}
