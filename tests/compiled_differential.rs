//! Compiled-path equivalence guarantee: the compiled serving path
//! (interned tag-paths, render-time signatures, scratch arena) is a pure
//! performance feature. For every page, its output must be byte-identical
//! to the legacy string-comparing reference path
//! ([`SectionWrapperSet::extract_page_legacy_cached`]) — same sections,
//! same records, same diagnostics, same JSON.

use mse::core::{
    DistanceCache, ExtractScratch, Extraction, Mse, MseConfig, Page, SectionWrapperSet,
};
use mse::testbed::EngineSpec;

fn build(engine: &EngineSpec, samples: usize) -> SectionWrapperSet {
    let pages: Vec<_> = (0..samples).map(|q| engine.page(q)).collect();
    let refs: Vec<(&str, Option<&str>)> = pages
        .iter()
        .map(|p| (p.html.as_str(), Some(p.query.as_str())))
        .collect();
    Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .expect("wrapper build")
}

#[test]
fn compiled_matches_legacy_over_testbed_corpus() {
    let cache = DistanceCache::disabled();
    let mut scratch = ExtractScratch::new();
    let mut pages_checked = 0usize;
    let mut records_seen = 0usize;
    for engine_id in 0..4 {
        let engine = EngineSpec::generate(2006, engine_id);
        let ws = build(&engine, 6);
        let cw = ws.compile();
        // Test pages beyond the sample range too (unseen queries).
        for q in 0..10 {
            let gp = engine.page(q);
            let page = Page::from_html(&gp.html, Some(&gp.query));
            let legacy = ws.extract_page_legacy_cached(&page, &cache);
            let compiled = cw.extract_page_scratch(&page, &cache, &mut scratch);
            assert_eq!(
                serde_json::to_string(&legacy).expect("legacy json"),
                serde_json::to_string(&compiled).expect("compiled json"),
                "engine {engine_id} page {q}: compiled output differs from legacy"
            );
            pages_checked += 1;
            records_seen += compiled
                .sections
                .iter()
                .map(|s| s.records.len())
                .sum::<usize>();
        }
    }
    assert_eq!(pages_checked, 40);
    // The corpus must actually exercise extraction, or equality is vacuous.
    assert!(
        records_seen > 100,
        "differential corpus extracted too few records ({records_seen})"
    );
}

#[test]
fn public_entry_points_agree_end_to_end() {
    // extract_with_query (compiled) vs extract_with_query_legacy: same
    // parse/render front end, both paths, full HTML in.
    let engine = EngineSpec::generate(7, 1);
    let ws = build(&engine, 5);
    for q in 0..6 {
        let gp = engine.page(q);
        let a: Extraction = ws.extract_with_query(&gp.html, Some(&gp.query));
        let b: Extraction = ws.extract_with_query_legacy(&gp.html, Some(&gp.query));
        assert_eq!(a, b, "page {q}: extract_with_query differs from legacy");
    }
}

#[test]
fn batch_matches_single_page_compiled() {
    // The work-stealing batch path must agree with per-page extraction.
    let engine = EngineSpec::generate(2006, 2);
    let ws = build(&engine, 5);
    let pages: Vec<_> = (0..8).map(|q| engine.page(q)).collect();
    let refs: Vec<(&str, Option<&str>)> = pages
        .iter()
        .map(|p| (p.html.as_str(), Some(p.query.as_str())))
        .collect();
    for threads in [1, 3] {
        let mut tws = ws.clone();
        tws.cfg.threads = threads;
        let batch = tws.extract_batch(&refs);
        let single: Vec<Extraction> = pages
            .iter()
            .map(|p| ws.extract_with_query(&p.html, Some(&p.query)))
            .collect();
        assert_eq!(batch, single, "threads={threads}");
    }
}
