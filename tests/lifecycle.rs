//! End-to-end wrapper lifecycle (ISSUE 7 acceptance): a simulated
//! mid-stream template redesign is detected from the extraction
//! diagnostics alone (no truth labels), a shadow-learned candidate is
//! statically verified, beats the old set on a holdout split, is
//! atomically promoted into the versioned store, and `store rollback`
//! restores the prior version with byte-identical extractions.

use mse::core::{score_on_holdout, DriftThresholds, DriftTracker, DriftVerdict, Mse, MseConfig};
use mse::store::{relearn_into_store, Provenance, Store};
use mse::testbed::DriftScenario;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mse-lifecycle-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_old(scenario: &DriftScenario) -> mse::core::SectionWrapperSet {
    let samples = scenario.sample_pages(5);
    let refs: Vec<(&str, Option<&str>)> = samples
        .iter()
        .map(|p| (p.html.as_str(), Some(p.query.as_str())))
        .collect();
    Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .expect("wrapper induction from before-template samples")
}

#[test]
fn drift_relearn_promote_rollback_end_to_end() {
    let scenario = DriftScenario::new(2006, 4, 12, 24);
    let old = build_old(&scenario);

    // v1: the learned set goes into the store and serves.
    let dir = temp_dir("e2e");
    let store = Store::open(&dir).expect("open store");
    let samples = scenario.sample_pages(5);
    let sample_html: Vec<&str> = samples.iter().map(|p| p.html.as_str()).collect();
    let v1 = store
        .save(
            "engine4",
            &old,
            Provenance::from_samples(&sample_html, &old.cfg, "initial build"),
        )
        .expect("save v1");
    store.promote("engine4", v1).expect("promote v1");

    // Serve the drifting stream. The tracker sees ONLY the wrapper set's
    // own extraction output — no ground truth enters the loop.
    let thresholds = DriftThresholds {
        window: 12,
        min_observations: 6,
        ring_capacity: 12,
        ..DriftThresholds::default()
    };
    let mut tracker = DriftTracker::new(thresholds);
    let mut verdicts = Vec::new();
    for idx in 0..40 {
        let page = scenario.page(idx);
        let ex = old.extract_with_query(&page.html, Some(&page.query));
        verdicts.push(tracker.observe(&old, &page.html, Some(&page.query), &ex));
    }

    // Stable while only the before-template serves, Degrading once the
    // 1-in-3 rollout starts, Broken after the full redesign — strictly in
    // that order.
    assert_eq!(verdicts[11], DriftVerdict::Stable, "{verdicts:?}");
    let first_degrading = verdicts
        .iter()
        .position(|v| *v == DriftVerdict::Degrading)
        .expect("rollout phase must degrade the verdict");
    let first_broken = verdicts
        .iter()
        .position(|v| *v == DriftVerdict::Broken)
        .expect("full redesign must break the verdict");
    assert!(first_degrading >= scenario.degrade_at, "{verdicts:?}");
    assert!(first_degrading < first_broken, "{verdicts:?}");
    assert!(
        verdicts[..first_degrading]
            .iter()
            .all(|v| *v == DriftVerdict::Stable),
        "{verdicts:?}"
    );
    assert_eq!(*verdicts.last().unwrap(), DriftVerdict::Broken);

    // Shadow re-learn from the tracker's ring (now pure redesigned
    // pages): verification-gated, holdout-compared, atomically promoted.
    let ring = tracker.recent_pages();
    assert_eq!(ring.len(), 12);
    let outcome =
        relearn_into_store(&store, "engine4", &old, &ring, "after redesign").expect("relearn");
    assert!(outcome.relearn.promote, "{:?}", outcome.relearn.new_score);
    assert!(outcome.relearn.new_score.beats(&outcome.relearn.old_score));
    assert_eq!(outcome.saved_version, Some(2));
    assert_eq!(store.active_version("engine4").unwrap(), Some(2));

    // Provenance: the new version records v1 as parent, the training
    // pages' hashes, and the config snapshot.
    let (_, record) = store.load("engine4", 2).expect("load v2");
    assert_eq!(record.provenance.parent, Some(1));
    assert_eq!(record.provenance.sample_hashes.len(), 6);
    assert_eq!(record.provenance.note, "after redesign");

    // Restart simulation: a fresh Store handle loads the active version
    // and extracts byte-identically to the in-memory candidate.
    let store2 = Store::open(&dir).expect("reopen store");
    let (active, reloaded, _) = store2.load_active("engine4").expect("load active");
    assert_eq!(active, 2);
    let probe = scenario.page(100); // After-phase page, unseen by training.
    let want = outcome
        .relearn
        .candidate
        .extract_with_query(&probe.html, Some(&probe.query));
    let got = reloaded.extract_with_query(&probe.html, Some(&probe.query));
    assert_eq!(
        serde_json::to_string(&want).unwrap(),
        serde_json::to_string(&got).unwrap(),
        "store round trip must not change extraction output"
    );
    assert!(got.total_records() > 0, "candidate serves the redesign");

    // Rollback: the parent chain restores v1, and v1 still extracts the
    // before-template byte-identically to the original in-memory set.
    assert_eq!(store2.rollback("engine4").unwrap(), 1);
    let (active, rolled_back, _) = store2.load_active("engine4").expect("load after rollback");
    assert_eq!(active, 1);
    let before_page = scenario.before.page(3);
    let want = old.extract_with_query(&before_page.html, Some(&before_page.query));
    let got = rolled_back.extract_with_query(&before_page.html, Some(&before_page.query));
    assert_eq!(
        serde_json::to_string(&want).unwrap(),
        serde_json::to_string(&got).unwrap(),
        "rollback must restore the prior version byte-identically"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn holdout_comparison_rejects_worse_candidate() {
    // A ring of before-template pages: the incumbent already serves them
    // perfectly, so a re-learned candidate can at best tie — and ties do
    // not promote. The store stays untouched.
    let scenario = DriftScenario::new(2006, 4, 1_000, 2_000);
    let old = build_old(&scenario);
    let dir = temp_dir("reject");
    let store = Store::open(&dir).expect("open store");
    let v1 = store
        .save(
            "engine4",
            &old,
            Provenance::from_samples(&["seed"], &old.cfg, "initial"),
        )
        .expect("save v1");
    store.promote("engine4", v1).expect("promote v1");

    let ring: Vec<(String, Option<String>)> = (0..10)
        .map(|i| {
            let p = scenario.page(i);
            (p.html, Some(p.query))
        })
        .collect();
    let outcome = relearn_into_store(&store, "engine4", &old, &ring, "noop").expect("relearn");
    assert!(!outcome.relearn.promote);
    assert_eq!(outcome.saved_version, None);
    assert_eq!(store.versions("engine4").unwrap(), vec![1]);
    assert_eq!(store.active_version("engine4").unwrap(), Some(1));

    // And directly: a stale set scores strictly worse than a fitting one
    // on redesigned holdout pages, so `beats` orders them correctly.
    let after_pages: Vec<_> = (0..6).map(|i| scenario.after.page(500 + i)).collect();
    let holdout: Vec<(&str, Option<&str>)> = after_pages
        .iter()
        .map(|p| (p.html.as_str(), Some(p.query.as_str())))
        .collect();
    let after_refs: Vec<(&str, Option<&str>)> = after_pages[..4]
        .iter()
        .map(|p| (p.html.as_str(), Some(p.query.as_str())))
        .collect();
    let fitting = Mse::new(MseConfig::default())
        .build_with_queries(&after_refs)
        .expect("build on after-template");
    let stale_score = score_on_holdout(&old, &holdout);
    let fitting_score = score_on_holdout(&fitting, &holdout);
    assert!(fitting_score.beats(&stale_score));
    assert!(!stale_score.beats(&fitting_score));

    let _ = std::fs::remove_dir_all(&dir);
}
