//! Steady-state allocation invariant for the fused zero-copy ingest
//! (DESIGN.md §13), companion to `zero_alloc.rs` for the match path.
//!
//! Registers [`mse_bench::alloc::CountingAlloc`] as this test binary's
//! global allocator and drives [`Page::try_from_html_fast`] over testbed
//! pages with a warmed [`IngestScratch`]. Ingest is not literally
//! zero-alloc — page text sizes vary, so some buffers regrow — but at
//! steady state it must (a) keep its pools at a fixed point instead of
//! growing without bound, and (b) allocate several times less than the
//! legacy owned-string path on the same corpus.
//!
//! The counters are process-global, so this file deliberately holds a
//! **single** `#[test]`: a sibling test allocating concurrently would
//! charge its allocations to the measured window.

use mse_bench::alloc::{counting, CountingAlloc};
use mse_core::{IngestScratch, Page, ResourceBudget};
use mse_testbed::EngineSpec;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn fast_ingest_reaches_allocation_steady_state() {
    let seed = 2006;
    let engine = EngineSpec::generate(seed, 0);
    let samples: Vec<_> = (0..12).map(|q| engine.page(q)).collect();
    let budget = ResourceBudget::default();
    let mut scratch = IngestScratch::new();

    // Warm-up rep: grow the node arena and the attr/text/line pools to
    // their steady state for this corpus.
    for s in &samples {
        let (p, _d) = Page::try_from_html_fast(&s.html, Some(&s.query), &budget, &mut scratch)
            .expect("testbed page must ingest");
        scratch.recycle(p);
    }
    let warmed = scratch.pool_sizes();

    // Measured rep: same corpus through the warmed scratch.
    let (_, fast_allocs, _) = counting(|| {
        for s in &samples {
            let (p, _d) = Page::try_from_html_fast(&s.html, Some(&s.query), &budget, &mut scratch)
                .expect("testbed page must ingest");
            scratch.recycle(p);
        }
    });
    assert_eq!(
        scratch.pool_sizes(),
        warmed,
        "scratch pools must reach a fixed point, not grow per rep"
    );

    // Reference: the legacy owned-string path on the identical corpus.
    let (_, legacy_allocs, _) = counting(|| {
        for s in &samples {
            let _ = Page::try_from_html(&s.html, Some(&s.query), &budget)
                .expect("testbed page must ingest");
        }
    });

    let n = samples.len() as u64;
    assert!(
        fast_allocs * 4 < legacy_allocs,
        "fast ingest allocated {fast_allocs} vs legacy {legacy_allocs} over {n} pages; \
         expected at least a 4x reduction (bench shows ~17x)"
    );
    assert!(
        fast_allocs / n <= 128,
        "fast ingest averaged {} allocs/page at steady state (bound: 128)",
        fast_allocs / n
    );
}
