//! Robustness: wrappers learned from clean pages must keep working when
//! the *test* pages are tag soup — unclosed tags, stray end tags, comment
//! debris. 2006-era result pages were rarely valid HTML, and the paper's
//! pipeline (like any browser-based one) has to shrug this off.

use mse::core::{BuildError, Extraction, Mse, MseConfig, ResourceBudget, SectionWrapperSet};
use mse::testbed::{Corpus, CorpusConfig};

/// Deterministically rough up a page: drop some closing tags that the
/// parser can recover (`</p>`, `</li>`, `</td>`, `</tr>`), inject stray
/// end tags and comments. The *visible text* is unchanged, so ground truth
/// still applies.
fn roughen(html: &str, salt: usize) -> String {
    let mut out = String::with_capacity(html.len());
    let mut i = 0;
    let mut k = salt;
    let bytes = html.as_bytes();
    while i < bytes.len() {
        let rest = &html[i..];
        let droppable = ["</p>", "</li>", "</td>", "</tr>"]
            .iter()
            .find(|t| rest.starts_with(**t))
            .copied();
        if let Some(tag) = droppable {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match (k >> 33) % 4 {
                0 => {} // drop the closing tag entirely
                1 => {
                    out.push_str("<!-- x -->");
                    out.push_str(tag);
                }
                2 => {
                    out.push_str(tag);
                    out.push_str("</span>"); // stray unmatched end tag
                }
                _ => out.push_str(tag),
            }
            i += tag.len();
        } else {
            let ch = rest.chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    out
}

#[test]
fn wrappers_survive_tag_soup_test_pages() {
    let corpus = Corpus::generate(CorpusConfig::small(2006));
    let cfg = MseConfig::default();
    let mut clean_total = 0usize;
    let mut soup_total = 0usize;
    let mut engines_checked = 0usize;

    for engine in &corpus.engines {
        let samples: Vec<(String, String)> = corpus
            .sample_pages(engine)
            .into_iter()
            .map(|p| (p.html, p.query))
            .collect();
        let refs: Vec<(&str, Option<&str>)> = samples
            .iter()
            .map(|(h, q)| (h.as_str(), Some(q.as_str())))
            .collect();
        let Ok(ws) = Mse::new(cfg.clone()).build_with_queries(&refs) else {
            continue;
        };
        engines_checked += 1;
        for (qi, page) in corpus.test_pages(engine).into_iter().enumerate() {
            let clean = ws.extract_with_query(&page.html, Some(&page.query));
            let soup_html = roughen(&page.html, engine.id * 100 + qi);
            let soup = ws.extract_with_query(&soup_html, Some(&page.query));
            clean_total += clean.total_records();
            soup_total += soup.total_records();
        }
    }
    assert!(
        engines_checked >= 8,
        "too few engines built ({engines_checked})"
    );
    assert!(
        clean_total > 200,
        "clean extraction too small: {clean_total}"
    );
    // Tag soup may cost a little, but the wrappers must keep most records.
    assert!(
        soup_total * 10 >= clean_total * 9,
        "tag soup broke extraction: {soup_total} vs {clean_total} records"
    );
}

/// Learn wrappers from one engine's clean sample pages.
fn built_wrappers() -> SectionWrapperSet {
    let corpus = Corpus::generate(CorpusConfig::small(2006));
    let engine = &corpus.engines[0];
    let samples: Vec<(String, String)> = corpus
        .sample_pages(engine)
        .into_iter()
        .map(|p| (p.html, p.query))
        .collect();
    let refs: Vec<(&str, Option<&str>)> = samples
        .iter()
        .map(|(h, q)| (h.as_str(), Some(q.as_str())))
        .collect();
    Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .expect("engine 0 builds")
}

/// Empty, whitespace-only, and zero-dynamic-section pages must extract to
/// an empty-but-valid `Extraction` — no panic, no phantom sections, and
/// JSON output that round-trips.
#[test]
fn degenerate_pages_extract_to_empty_but_valid() {
    let ws = built_wrappers();
    let cases: [(&str, &str); 3] = [
        ("empty page", ""),
        ("whitespace-only page", "  \n\t \r\n   \n"),
        (
            "zero-dynamic-sections page",
            "<html><head><title>About</title></head><body>\
             <h1>About us</h1><p>We are a small company.</p>\
             <p>Contact: mail@example.com</p></body></html>",
        ),
    ];
    for (name, html) in cases {
        let ex = ws.extract(html);
        assert!(ex.sections.is_empty(), "{name}: expected no sections");
        assert_eq!(ex.total_records(), 0, "{name}");
        let json = serde_json::to_string(&ex).expect("serializes");
        let back: Extraction = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(ex, back, "{name}");
    }
}

/// A page whose only section holds a single record: extraction must not
/// panic and every reported section must be internally consistent.
#[test]
fn single_record_section_is_handled() {
    let ws = built_wrappers();
    let corpus = Corpus::generate(CorpusConfig::small(2006));
    let page = corpus.engines[0].page(0);
    // Keep the page skeleton but leave a single record-sized blob of
    // repeated content: truncate after the first ~third of the body.
    let cut = page.html.len() / 3;
    let mut boundary = cut;
    while !page.html.is_char_boundary(boundary) {
        boundary += 1;
    }
    let truncated = &page.html[..boundary];
    let ex = ws.extract_with_query(truncated, Some(&page.query));
    for sec in &ex.sections {
        assert!(sec.start <= sec.end, "section bounds inverted");
        assert!(!sec.records.is_empty(), "section with zero records");
        for rec in &sec.records {
            assert!(rec.start >= sec.start && rec.end <= sec.end);
        }
    }
}

/// Wrapper construction on degenerate corpora fails with *typed* errors,
/// never a panic.
#[test]
fn build_on_degenerate_corpora_returns_typed_errors() {
    let mse = Mse::new(MseConfig::default());
    assert!(matches!(mse.build(&[]), Err(BuildError::TooFewPages(0))));
    assert!(matches!(
        mse.build(&["<html></html>"]),
        Err(BuildError::TooFewPages(1))
    ));
    assert!(matches!(mse.build(&["", ""]), Err(BuildError::NoSections)));
    let static_page = "<html><body><h1>About</h1><p>hello there</p></body></html>";
    assert!(matches!(
        mse.build(&[static_page, static_page]),
        Err(BuildError::NoSections)
    ));

    // A sample page that blows the input-size budget is a strict,
    // per-page failure.
    let mut cfg = MseConfig::default();
    cfg.budget.max_input_bytes = 64;
    let corpus = Corpus::generate(CorpusConfig::small(2006));
    let samples: Vec<String> = corpus
        .sample_pages(&corpus.engines[0])
        .into_iter()
        .map(|p| p.html)
        .collect();
    let refs: Vec<&str> = samples.iter().map(String::as_str).collect();
    match Mse::new(cfg).build(&refs) {
        Err(BuildError::Page { index, .. }) => assert_eq!(index, 0),
        other => panic!("expected BuildError::Page, got {other:?}"),
    }

    // An invalid budget is rejected before any page is touched.
    let cfg = MseConfig {
        budget: ResourceBudget {
            max_depth: 0,
            ..ResourceBudget::default()
        },
        ..MseConfig::default()
    };
    assert!(matches!(
        Mse::new(cfg).build(&refs),
        Err(BuildError::InvalidConfig(_))
    ));
}

#[test]
fn roughen_preserves_visible_text() {
    let corpus = Corpus::generate(CorpusConfig::small(2006));
    let page = corpus.engines[0].page(0);
    let soup = roughen(&page.html, 7);
    assert_ne!(page.html, soup, "roughen must actually change the markup");
    let clean_dom = mse::dom::parse(&page.html);
    let soup_dom = mse::dom::parse(&soup);
    let norm = |d: &mse::dom::Dom| -> String {
        d.text_of(d.root())
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ")
    };
    assert_eq!(norm(&clean_dom), norm(&soup_dom));
}
