//! Robustness: wrappers learned from clean pages must keep working when
//! the *test* pages are tag soup — unclosed tags, stray end tags, comment
//! debris. 2006-era result pages were rarely valid HTML, and the paper's
//! pipeline (like any browser-based one) has to shrug this off.

use mse::core::{Mse, MseConfig};
use mse::testbed::{Corpus, CorpusConfig};

/// Deterministically rough up a page: drop some closing tags that the
/// parser can recover (`</p>`, `</li>`, `</td>`, `</tr>`), inject stray
/// end tags and comments. The *visible text* is unchanged, so ground truth
/// still applies.
fn roughen(html: &str, salt: usize) -> String {
    let mut out = String::with_capacity(html.len());
    let mut i = 0;
    let mut k = salt;
    let bytes = html.as_bytes();
    while i < bytes.len() {
        let rest = &html[i..];
        let droppable = ["</p>", "</li>", "</td>", "</tr>"]
            .iter()
            .find(|t| rest.starts_with(**t))
            .copied();
        if let Some(tag) = droppable {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match (k >> 33) % 4 {
                0 => {} // drop the closing tag entirely
                1 => {
                    out.push_str("<!-- x -->");
                    out.push_str(tag);
                }
                2 => {
                    out.push_str(tag);
                    out.push_str("</span>"); // stray unmatched end tag
                }
                _ => out.push_str(tag),
            }
            i += tag.len();
        } else {
            let ch = rest.chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    out
}

#[test]
fn wrappers_survive_tag_soup_test_pages() {
    let corpus = Corpus::generate(CorpusConfig::small(2006));
    let cfg = MseConfig::default();
    let mut clean_total = 0usize;
    let mut soup_total = 0usize;
    let mut engines_checked = 0usize;

    for engine in &corpus.engines {
        let samples: Vec<(String, String)> = corpus
            .sample_pages(engine)
            .into_iter()
            .map(|p| (p.html, p.query))
            .collect();
        let refs: Vec<(&str, Option<&str>)> = samples
            .iter()
            .map(|(h, q)| (h.as_str(), Some(q.as_str())))
            .collect();
        let Ok(ws) = Mse::new(cfg.clone()).build_with_queries(&refs) else {
            continue;
        };
        engines_checked += 1;
        for (qi, page) in corpus.test_pages(engine).into_iter().enumerate() {
            let clean = ws.extract_with_query(&page.html, Some(&page.query));
            let soup_html = roughen(&page.html, engine.id * 100 + qi);
            let soup = ws.extract_with_query(&soup_html, Some(&page.query));
            clean_total += clean.total_records();
            soup_total += soup.total_records();
        }
    }
    assert!(
        engines_checked >= 8,
        "too few engines built ({engines_checked})"
    );
    assert!(
        clean_total > 200,
        "clean extraction too small: {clean_total}"
    );
    // Tag soup may cost a little, but the wrappers must keep most records.
    assert!(
        soup_total * 10 >= clean_total * 9,
        "tag soup broke extraction: {soup_total} vs {clean_total} records"
    );
}

#[test]
fn roughen_preserves_visible_text() {
    let corpus = Corpus::generate(CorpusConfig::small(2006));
    let page = corpus.engines[0].page(0);
    let soup = roughen(&page.html, 7);
    assert_ne!(page.html, soup, "roughen must actually change the markup");
    let clean_dom = mse::dom::parse(&page.html);
    let soup_dom = mse::dom::parse(&soup);
    let norm = |d: &mse::dom::Dom| -> String {
        d.text_of(d.root())
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ")
    };
    assert_eq!(norm(&clean_dom), norm(&soup_dom));
}
