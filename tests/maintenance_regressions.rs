//! Regression tests for the ISSUE 7 health-check bugfixes, wired into
//! the default `cargo test` tier:
//!
//! 1. `health_check` must ingest untrusted pages through the budgeted,
//!    config-aware path — a hostile page trips the `ResourceBudget`
//!    (counted unhealthy) instead of blowing past the limits, and never
//!    aborts the rest of the batch.
//! 2. Sections served by an absorbing *family* must be attributed to the
//!    absorbed member wrappers — not dropped (which misreported absorbed
//!    wrappers as unobserved and concrete wrappers as dead), and their
//!    anomaly tallies must use the member's own threshold.

use mse::core::{DriftVerdict, Mse, MseConfig, ResourceBudget, SectionWrapperSet, WrapperStatus};
use mse::testbed::EngineSpec;

fn build_engine_set(engine_id: usize) -> SectionWrapperSet {
    let spec = EngineSpec::generate(2006, engine_id);
    let pages: Vec<_> = (0..5).map(|q| spec.page(q)).collect();
    let refs: Vec<(&str, Option<&str>)> = pages
        .iter()
        .map(|p| (p.html.as_str(), Some(p.query.as_str())))
        .collect();
    Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .expect("wrapper induction")
}

/// Two same-format sections (Books, Videos) that the family builder
/// absorbs into one family — the `absorbed = [0, 1]` fixture from
/// `mse-core`'s family tests, driven through the full pipeline.
fn absorbed_serp(books: &[&str], videos: &[&str], query: &str) -> String {
    let mut html = format!("<body><h1>Seek</h1><p>Results for <b>{query}</b>: 7 found</p>");
    let mut emit = |name: &str, words: &[&str]| {
        html.push_str(&format!(
            "<p><b><font color=\"#003366\">{name}</font></b></p><div class=results>"
        ));
        for (i, w) in words.iter().enumerate() {
            html.push_str(&format!(
                "<div class=r><a href=\"/{name}/{i}\">{w} title</a><br>{w} snippet text</div>"
            ));
        }
        html.push_str("</div>");
    };
    emit("Books", books);
    emit("Videos", videos);
    html.push_str("<hr><p>Copyright 2006 Seek Inc.</p></body>");
    html
}

fn build_absorbed_set() -> SectionWrapperSet {
    let htmls = [
        absorbed_serp(
            &["alpha", "beta", "gamma"],
            &["sun", "moon", "star"],
            "knee injury",
        ),
        absorbed_serp(
            &["red", "green", "blue"],
            &["rain", "wind", "snow"],
            "digital camera",
        ),
        absorbed_serp(
            &["one", "two", "three"],
            &["hill", "lake", "cave"],
            "jazz festival",
        ),
    ];
    let refs: Vec<(&str, Option<&str>)> = htmls
        .iter()
        .zip(["knee injury", "digital camera", "jazz festival"])
        .map(|(h, q)| (h.as_str(), Some(q)))
        .collect();
    Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .expect("wrapper induction")
}

#[test]
fn health_check_budgets_hostile_pages_without_aborting() {
    let mut ws = build_engine_set(4);
    // A budget every healthy page passes comfortably but a node bomb
    // cannot. Before the fix, health_check used the infallible unbudgeted
    // parse and this page sailed through the limits.
    ws.cfg.budget = ResourceBudget {
        max_dom_nodes: 4_000,
        ..ResourceBudget::default()
    };
    let bomb = format!("<body>{}</body>", "<div><p>filler</p>".repeat(20_000));
    let spec = EngineSpec::generate(2006, 4);
    let good = spec.page(7);
    let pages: Vec<(&str, Option<&str>)> = vec![
        (bomb.as_str(), None),
        (good.html.as_str(), Some(good.query.as_str())),
    ];
    let report = ws.health_check(&pages);
    assert_eq!(report.pages_checked, 2);
    assert_eq!(report.ingest_failures, 1, "{report:?}");
    assert_eq!(report.empty_pages, 1);
    // The batch continued: the good page still registered a hit.
    assert!(
        report
            .wrappers
            .iter()
            .flatten()
            .any(|s| !matches!(s, WrapperStatus::Dead)),
        "{report:?}"
    );
    // An ingest failure is unhealthy (Degrading), not a batch abort and
    // not a rebuild order.
    assert_eq!(report.verdict(), DriftVerdict::Degrading);
    assert!(!report.needs_rebuild());

    // The legacy ingest path honors the same budget.
    ws.cfg.legacy_ingest = true;
    let legacy = ws.health_check(&pages);
    assert_eq!(legacy.ingest_failures, 1, "{legacy:?}");
}

#[test]
fn health_check_attributes_family_sections_to_absorbed_members() {
    let ws = build_absorbed_set();
    assert_eq!(
        ws.absorbed,
        vec![0, 1],
        "fixture must produce an absorbing family; got families={:?}",
        ws.families.len()
    );
    let fresh = [
        absorbed_serp(&["mercury", "venus"], &["comet", "meteor"], "ocean climate"),
        absorbed_serp(
            &["earth", "mars", "saturn"],
            &["fog", "mist", "haze"],
            "ancient history",
        ),
    ];
    let pages: Vec<(&str, Option<&str>)> = fresh
        .iter()
        .zip(["ocean climate", "ancient history"])
        .map(|(h, q)| (h.as_str(), Some(q)))
        .collect();
    let report = ws.health_check(&pages);
    assert!(report.family_sections >= 4, "{report:?}");
    // Before the fix every wrapper slot reported None (absorbed discarded
    // at report time) and healthy_fraction was 0 on a perfectly healthy
    // batch. Attribution gives both absorbed members their hits back.
    let statuses: Vec<_> = report.wrappers.iter().flatten().collect();
    assert_eq!(statuses.len(), 2, "{report:?}");
    assert!(
        statuses
            .iter()
            .all(|s| matches!(s, WrapperStatus::Healthy { hits } if *hits > 0)),
        "{report:?}"
    );
    assert_eq!(report.healthy_fraction(), 1.0);
    assert_eq!(report.verdict(), DriftVerdict::Stable);
    assert!(!report.needs_rebuild());
    // Plausible family record counts must not raise anomaly flags under
    // any member's threshold.
    assert!(
        report
            .wrappers
            .iter()
            .flatten()
            .all(|s| !matches!(s, WrapperStatus::Degraded { .. })),
        "{report:?}"
    );
}
