//! Adversarial-input harness: the entire ingestion path (parse → render →
//! extract) must be panic-free and resource-bounded on *arbitrary* bytes,
//! not just tag soup a search engine might plausibly emit. Hostile inputs
//! here include truncated tags, deeply nested unbalanced markup, giant
//! numeric character references, null bytes, and megabyte-scale single
//! lines.
//!
//! The CI fuzz-smoke job reruns this suite with a raised `PROPTEST_CASES`.

use mse::core::{Mse, MseConfig, ResourceBudget, SectionWrapperSet, Stage};
use mse::dom::{parse, parse_with_limits, Dom, ParseLimits};
use mse::render::{render_lines, render_lines_capped};
use mse::testbed::{Corpus, CorpusConfig};
use proptest::prelude::*;

/// Per-property case count: the given base, or `PROPTEST_CASES` from the
/// environment when that is larger (the CI fuzz-smoke job raises it).
fn cases(base: u32) -> ProptestConfig {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map_or(base, |env| env.max(base));
    ProptestConfig::with_cases(n)
}

/// Hostile HTML fragments: truncated tags, unbalanced nesting, comment and
/// CDATA debris, out-of-range character references, null bytes, plus some
/// benign text so documents are not pure noise.
fn fragment() -> impl Strategy<Value = String> {
    let lit = |s: &'static str| Just(s.to_string());
    prop_oneof![
        lit("<"),
        lit(">"),
        lit("</"),
        lit("<di"),
        lit("<div"),
        lit("<div class=\"r"),
        lit("<div><div><div>"),
        lit("</div>"),
        lit("</div></div></span>"),
        lit("<a href=\"http://e.com/?q="),
        lit("<table><tr><td>"),
        lit("<!--"),
        lit("-->"),
        lit("<![CDATA["),
        lit("<script>var x = '<div>';"),
        lit("</script"),
        lit("<style>p{color:red"),
        lit("&#999999999;"),
        lit("&#x110000;"),
        lit("&#xD800;"),
        lit("&#xFFFFFFFFF;"),
        lit("&amp"),
        lit("&;"),
        lit("\0"),
        lit("\0\0\0\0"),
        lit("=\"'"),
        "[a-z ]{0,16}",
        "[<>&;#x0-9]{1,12}",
    ]
}

fn hostile_html() -> impl Strategy<Value = String> {
    proptest::collection::vec(fragment(), 0..40).prop_map(|v| v.concat())
}

/// Structural sanity of a parsed DOM: every child link points at a live
/// node and the tree is acyclic from the root.
fn dom_is_consistent(dom: &Dom) -> bool {
    let n = dom.len();
    let mut seen = vec![false; n];
    let mut stack = vec![dom.root()];
    while let Some(id) = stack.pop() {
        let idx = id.index();
        if idx >= n || seen[idx] {
            return false;
        }
        seen[idx] = true;
        for c in dom.children(id) {
            stack.push(c);
        }
    }
    true
}

fn built_wrappers() -> SectionWrapperSet {
    let corpus = Corpus::generate(CorpusConfig::small(2006));
    let engine = &corpus.engines[0];
    let samples: Vec<(String, String)> = corpus
        .sample_pages(engine)
        .into_iter()
        .map(|p| (p.html, p.query))
        .collect();
    let refs: Vec<(&str, Option<&str>)> = samples
        .iter()
        .map(|(h, q)| (h.as_str(), Some(q.as_str())))
        .collect();
    Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .expect("engine 0 builds")
}

proptest! {
    #![proptest_config(cases(400))]

    /// `parse` accepts any string without panicking and yields a
    /// structurally consistent DOM; rendering it never panics either.
    #[test]
    fn parse_and_render_survive_hostile_html(html in hostile_html()) {
        let dom = parse(&html);
        prop_assert!(dom_is_consistent(&dom));
        let lines = render_lines(&dom);
        // Line numbers are 1-based and strictly increasing.
        prop_assert!(lines.windows(2).all(|w| w[0].number < w[1].number));
        prop_assert!(lines.first().is_none_or(|l| l.number >= 1));
        let (capped, truncated) = render_lines_capped(&dom, 16);
        prop_assert!(capped.len() <= 16);
        prop_assert!(!truncated || lines.len() > 16);
    }
}

proptest! {
    #![proptest_config(cases(300))]

    /// `parse_with_limits` enforces its budgets: node and input-size caps
    /// either reject the page with a typed error or hold the bound.
    #[test]
    fn parse_limits_are_enforced(html in hostile_html(), max_nodes in 1usize..64) {
        let limits = ParseLimits {
            max_input_bytes: 512,
            max_nodes,
            max_depth: 32,
        };
        match parse_with_limits(&html, &limits) {
            Ok(dom) => prop_assert!(dom.len() <= max_nodes),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}

proptest! {
    #![proptest_config(cases(300))]

    /// Wrapper application on hostile pages: never a panic, and always a
    /// well-formed (possibly empty) extraction that serializes.
    #[test]
    fn extraction_survives_hostile_html(html in hostile_html()) {
        let ws = built_wrappers();
        let ex = ws.extract(&html);
        for sec in &ex.sections {
            prop_assert!(sec.start <= sec.end);
            for rec in &sec.records {
                prop_assert!(rec.start >= sec.start && rec.end <= sec.end);
            }
        }
        prop_assert!(serde_json::to_string(&ex).is_ok());
    }
}

proptest! {
    #![proptest_config(cases(200))]

    /// Unbalanced nesting at arbitrary depth (well past the parser's
    /// clamp) parses flat rather than deep: no stack overflow downstream.
    #[test]
    fn deep_unbalanced_nesting_is_flattened(depth in 1usize..5000, close in any::<bool>()) {
        let mut html = String::with_capacity(depth * 6 + 16);
        for _ in 0..depth {
            html.push_str("<div>");
        }
        html.push_str("leaf text");
        if close {
            for _ in 0..depth {
                html.push_str("</div>");
            }
        }
        let dom = parse(&html);
        prop_assert!(dom_is_consistent(&dom));
        let lines = render_lines(&dom);
        prop_assert_eq!(lines.len(), 1, "one text line expected");
    }
}

/// 100k-deep unbalanced nesting: the parser clamp plus the iterative /
/// depth-capped traversals keep every downstream stage off the call-stack
/// cliff.
#[test]
fn hundred_thousand_deep_nesting_no_stack_overflow() {
    let depth = 100_000;
    let mut html = String::with_capacity(depth * 5 + 32);
    for _ in 0..depth {
        html.push_str("<div>");
    }
    html.push_str("bottom");
    let dom = parse(&html);
    assert!(dom_is_consistent(&dom));
    let lines = render_lines(&dom);
    assert_eq!(lines.len(), 1);
    let ws = built_wrappers();
    let ex = ws.extract(&html);
    assert!(serde_json::to_string(&ex).is_ok());
}

/// A megabyte-scale single line (no tags, no breaks) parses, renders to
/// one line, and extracts without blowing memory or time.
#[test]
fn megabyte_single_line_is_bounded() {
    let html = format!("<html><body><p>{}</p></body></html>", "x".repeat(2 << 20));
    let dom = parse(&html);
    assert!(dom_is_consistent(&dom));
    let lines = render_lines(&dom);
    assert_eq!(lines.len(), 1);
    let ws = built_wrappers();
    let ex = ws.extract(&html);
    assert!(ex.sections.is_empty());
}

/// Giant numeric character references decode to U+FFFD instead of
/// panicking or emitting surrogates.
#[test]
fn giant_char_refs_decode_to_replacement() {
    for bad in [
        "&#999999999999999999999;",
        "&#x7FFFFFFFFFFF;",
        "&#xD800;",
        "&#x110000;",
    ] {
        let html = format!("<p>a{bad}b</p>");
        let dom = parse(&html);
        let lines = render_lines(&dom);
        assert_eq!(lines.len(), 1, "{bad}");
        assert!(
            lines[0].text.contains('\u{FFFD}'),
            "{bad}: {}",
            lines[0].text
        );
    }
}

/// Budget trips during extraction degrade to a partial result with
/// diagnostics — they never abort, and never leak into sibling pages of a
/// batch.
#[test]
fn budget_trips_degrade_with_diagnostics() {
    let corpus = Corpus::generate(CorpusConfig::small(2006));
    let engine = &corpus.engines[0];
    let samples: Vec<(String, String)> = corpus
        .sample_pages(engine)
        .into_iter()
        .map(|p| (p.html, p.query))
        .collect();
    let refs: Vec<(&str, Option<&str>)> = samples
        .iter()
        .map(|(h, q)| (h.as_str(), Some(q.as_str())))
        .collect();
    let page = corpus.test_pages(engine).remove(0);

    // Input-size budget: the whole page is rejected up front; extraction
    // degrades to empty-with-diagnostic instead of panicking.
    let mut cfg = MseConfig::default();
    cfg.budget.max_input_bytes = 64;
    let ws = Mse::new(MseConfig::default())
        .build_with_queries(&refs)
        .expect("build");
    let mut ws_small = ws.clone();
    ws_small.cfg = cfg;
    let ex = ws_small.extract_with_query(&page.html, Some(&page.query));
    assert!(ex.sections.is_empty());
    assert!(
        ex.diagnostics.iter().any(|d| d.stage == Stage::Parse),
        "expected a parse-stage diagnostic: {:?}",
        ex.diagnostics
    );
    // Strict variant surfaces the same condition as a typed error.
    assert!(ws_small
        .try_extract_with_query(&page.html, Some(&page.query))
        .is_err());

    // Content-line budget: the page is truncated, extraction continues on
    // the prefix and says so.
    let mut ws_lines = ws.clone();
    ws_lines.cfg.budget.max_content_lines = 5;
    let ex = ws_lines.extract_with_query(&page.html, Some(&page.query));
    assert!(
        ex.diagnostics.iter().any(|d| d.stage == Stage::Render),
        "expected a render-stage diagnostic: {:?}",
        ex.diagnostics
    );

    // Record cap: sections are truncated, not dropped.
    let mut ws_cap = ws.clone();
    ws_cap.cfg.budget.max_records_per_section = 1;
    let ex = ws_cap.extract_with_query(&page.html, Some(&page.query));
    assert!(ex.sections.iter().all(|s| s.records.len() <= 1));
    if !ex.sections.is_empty() {
        assert!(
            ex.diagnostics.iter().any(|d| d.stage == Stage::Extract),
            "expected an extract-stage diagnostic: {:?}",
            ex.diagnostics
        );
    }

    // Batch: one hostile page degrades alone; its siblings extract as if
    // it were not there.
    let giant = "x".repeat(1 << 20);
    let mut ws_batch = ws.clone();
    ws_batch.cfg.budget.max_input_bytes = 1 << 16;
    let inputs: Vec<(&str, Option<&str>)> = vec![
        (page.html.as_str(), Some(page.query.as_str())),
        (giant.as_str(), None),
        (page.html.as_str(), Some(page.query.as_str())),
    ];
    let batch = ws_batch.extract_batch(&inputs);
    assert_eq!(batch.len(), 3);
    assert!(batch[1].sections.is_empty());
    assert!(!batch[1].diagnostics.is_empty());
    assert_eq!(batch[0], batch[2]);
    assert!(!batch[0].sections.is_empty(), "sibling pages unaffected");

    // An unbounded budget still validates.
    assert!(ResourceBudget::unbounded().validate().is_ok());
}
